package scenario

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/pool"
	"repro/internal/power"
	"repro/internal/rcnet"
	"repro/internal/uarch"
)

// Engine limits: specs are untrusted input and every grid cell is a full
// co-simulation, so the per-cell step count and the co-simulated CPU cycles
// are bounded up front instead of discovered by timeout. PR 6 raised the
// step cap from 200k (a 2M-step cell is ~2000 s of simulated time at the
// 1 ms control interval — long thermal-cycling studies — and the batched
// solve kernels keep it tractable); the cycle cap is unchanged.
const (
	maxCellSteps          = 2_000_000
	maxWorkloadCyclesCell = 1_000_000_000
)

// Options tune Compile.
type Options struct {
	// Models resolves a hotspot.Config into a compiled model. nil compiles
	// directly; the simulation service passes a closure over its
	// single-flight model cache so grid packages share cached models with
	// every other endpoint (the cache key is Config.Fingerprint, identical
	// either way). Compile memoizes per-fingerprint within one call, so even
	// the direct path compiles each distinct package exactly once.
	Models func(hotspot.Config) (*hotspot.Model, error)
	// Ctx, when non-nil, bounds the expensive parts of Compile itself — the
	// nominal workload prepass (up to 1e9 co-simulated CPU cycles), model
	// resolution and the initial steady solves — so a deadline or client
	// disconnect cannot pin a serving slot in compilation. RunGrid takes its
	// own context.
	Ctx context.Context
}

// Cell identifies one grid cell: a package × policy combination.
type Cell struct {
	// Index is the cell's position in the deterministic grid expansion
	// (packages outermost, then the PolicyGrid cross product).
	Index int
	// Package is the package label.
	Package string
	// Policy is the DTM policy of this cell.
	Policy dtm.Policy
}

// Metrics summarizes one closed-loop grid cell.
type Metrics struct {
	// DurationS is the simulated time (s).
	DurationS float64 `json:"duration_s"`
	// EngagedS is the total time DTM throttled (s); DutyCycle is its
	// fraction of the run.
	EngagedS  float64 `json:"engaged_s"`
	DutyCycle float64 `json:"duty_cycle"`
	// Engagements counts distinct trigger events.
	Engagements int `json:"engagements"`
	// PerfPenalty is the fraction of nominal throughput lost to throttling:
	// over workload phases it is measured as lost committed instructions
	// against the nominal (unthrottled) run of the same schedule; over trace
	// and pulse phases it accrues (1−PerfFactor) per engaged step.
	PerfPenalty float64 `json:"perf_penalty"`
	// ViolationS is total time the true hottest block exceeded EmergencyC;
	// CoveredViolationS is the part of it during which DTM was engaged, and
	// ViolationCoverage their ratio (1 when there were no violations —
	// nothing was missed). Low coverage under an active policy means the
	// sensors or the policy missed emergencies (§5.3/§5.4).
	ViolationS        float64 `json:"violation_s"`
	CoveredViolationS float64 `json:"covered_violation_s"`
	ViolationCoverage float64 `json:"violation_coverage"`
	// PeakC is the true peak block temperature; ObservedPeakC the hottest
	// sensor reading the controller saw.
	PeakC         float64 `json:"peak_c"`
	ObservedPeakC float64 `json:"observed_peak_c"`
	// InitialHotC and FinalHotC are the hottest block temperatures at the
	// first and after the last step.
	InitialHotC float64 `json:"initial_hot_c"`
	FinalHotC   float64 `json:"final_hot_c"`
	// Committed counts instructions committed in workload phases (0 for
	// pure trace/pulse scenarios).
	Committed uint64 `json:"committed,omitempty"`
}

// CellResult pairs a cell with its outcome.
type CellResult struct {
	Cell    Cell
	Metrics Metrics
	Err     error
}

type phaseKind int

const (
	phaseWorkload phaseKind = iota
	phaseTrace
	phasePulse
)

// compiledPhase is one schedule segment resolved against the floorplan.
type compiledPhase struct {
	name  string
	kind  phaseKind
	steps int

	// workload
	workload      uarch.Workload
	seed          int64
	cyclesPerStep float64

	// trace: rows in floorplan order (unnamed blocks zero-filled)
	rows        [][]float64
	rowInterval float64

	// pulse
	pulseBlock         int
	peakW, baseW       float64
	onS, offS, periodS float64
}

// compiledPackage is one cooling configuration with its initial state.
type compiledPackage struct {
	label     string
	model     *hotspot.Model
	initTemps []float64
}

// Compiled is a scenario resolved against floorplan, models and the policy
// grid, ready to run. It is immutable after Compile and safe to share across
// goroutines.
type Compiled struct {
	spec     Spec
	fp       *floorplan.Floorplan
	dt       float64
	steps    int
	phases   []compiledPhase
	pkgs     []compiledPackage
	policies []dtm.Policy
	pm       *power.Model // non-nil iff the schedule has workload phases

	sensorIdx []int
	sensorOff []float64
	// flatLeak is the reference-temperature leakage vector (nil without
	// workload phases), precomputed so flat-leakage steps allocate nothing.
	flatLeak []float64

	// nominal (unthrottled) schedule statistics from the compile-time
	// prepass: the per-cell performance baseline and the initial-steady
	// operating point.
	nominalCommitted uint64
	workloadSteps    int
	avgBlockPower    []float64
}

// Name returns the scenario's label.
func (c *Compiled) Name() string { return c.spec.Name }

// SolverBackends maps each package label to the linear-solver backend its
// model compiled onto ("dense", "cholesky", "sparse", or
// "reduced(order=N)"). Grid cells inherit the backend's per-step cost
// directly — every control step is one backward-Euler solve — so the
// mapping is part of a run's provenance. Reduced backends carry their basis
// order because it, not the node count, sets the per-step cost.
func (c *Compiled) SolverBackends() map[string]string {
	out := make(map[string]string, len(c.pkgs))
	for _, p := range c.pkgs {
		b := p.model.SolverBackend()
		if b == "reduced" {
			b = fmt.Sprintf("reduced(order=%d)", p.model.SolverStats().ReducedOrder)
		}
		out[p.label] = b
	}
	return out
}

// Floorplan returns the resolved floorplan.
func (c *Compiled) Floorplan() *floorplan.Floorplan { return c.fp }

// Interval returns the control step (s).
func (c *Compiled) Interval() float64 { return c.dt }

// Steps returns the number of control steps each cell simulates.
func (c *Compiled) Steps() int { return c.steps }

// Cells returns the deterministic grid expansion: packages outermost, then
// the PolicyGrid cross product.
func (c *Compiled) Cells() []Cell {
	out := make([]Cell, 0, len(c.pkgs)*len(c.policies))
	for _, pkg := range c.pkgs {
		for _, pol := range c.policies {
			out = append(out, Cell{Index: len(out), Package: pkg.label, Policy: pol})
		}
	}
	return out
}

// Compile validates and resolves a spec: floorplan, thermal models (one per
// package, via Options.Models or a direct build), phase schedules, sensors
// and the expanded policy grid. It also runs the nominal (unthrottled)
// schedule once to fix the per-cell performance baseline and, when
// InitialSteady is set, the initial operating point. All spec-shaped
// failures return a *SpecError.
func Compile(spec *Spec, opts Options) (*Compiled, error) {
	if spec == nil {
		return nil, specErrf("(spec)", "nil spec")
	}
	c := &Compiled{spec: *spec}
	s := &c.spec
	if s.Interval == 0 {
		s.Interval = 1e-3
	}
	if s.Seed == 0 {
		s.Seed = 2009
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c.dt = s.Interval

	// Floorplan.
	var err error
	c.fp, err = resolveFloorplan(s)
	if err != nil {
		return nil, err
	}

	// Power model, if any phase steps the CPU.
	hasWorkload := false
	for _, p := range s.Phases {
		if p.Workload != "" {
			hasWorkload = true
		}
	}
	if hasWorkload {
		pcfg, err := powerConfig(s.Power)
		if err != nil {
			return nil, err
		}
		c.pm, err = power.New(pcfg, c.fp)
		if err != nil {
			return nil, specErrf("floorplan", "workload phases need the EV6 block set: %v", err)
		}
		if c.flatLeak, err = c.pm.LeakagePower(c.refTemps()); err != nil {
			return nil, err
		}
	}

	// Phases.
	for i, p := range s.Phases {
		cp, err := c.compilePhase(i, p)
		if err != nil {
			return nil, err
		}
		c.phases = append(c.phases, cp)
	}
	c.steps = 0
	sum := 0
	for _, p := range c.phases {
		sum += p.steps
	}
	if s.Duration > 0 {
		c.steps = int(math.Round(s.Duration / c.dt))
		if c.steps < 1 {
			c.steps = 1
		}
	} else {
		c.steps = sum
	}
	if c.steps > maxCellSteps {
		return nil, specErrf("duration", "scenario is %d control steps per cell, limit %d", c.steps, maxCellSteps)
	}
	if c.pm != nil {
		// Schedule arithmetic only — no producer, whose phase entries
		// construct CPU/stream state.
		var cycles float64
		phase, inPhase := 0, 0
		for k := 0; k < c.steps; k++ {
			ph := &c.phases[phase]
			if ph.kind == phaseWorkload {
				cycles += ph.cyclesPerStep
			}
			if inPhase++; inPhase >= ph.steps {
				inPhase = 0
				phase = (phase + 1) % len(c.phases)
			}
		}
		if cycles > maxWorkloadCyclesCell {
			return nil, specErrf("interval", "scenario co-simulates %.3g CPU cycles per cell, limit %d (lower power.clock_hz or the duration)", cycles, int64(maxWorkloadCyclesCell))
		}
	}

	// Sensors.
	for i, sv := range s.Sensors {
		bi := c.fp.Index(sv.Block)
		if bi < 0 {
			return nil, specErrf(fmt.Sprintf("sensors[%d].block", i), "unknown block %q", sv.Block)
		}
		c.sensorIdx = append(c.sensorIdx, bi)
		c.sensorOff = append(c.sensorOff, sv.OffsetC)
	}

	// Policy grid (each policy must survive controller quantization).
	c.policies, err = s.Policies.policies(c.dt)
	if err != nil {
		return nil, specErrf("policies", "%v", err)
	}
	for i, pol := range c.policies {
		if _, err := dtm.NewController(pol, c.dt); err != nil {
			return nil, specErrf("policies", "policy %d: %v", i, err)
		}
	}

	// Packages, through the model resolver (memoized by fingerprint so each
	// distinct configuration compiles exactly once per call even without a
	// shared cache).
	resolve := opts.Models
	if resolve == nil {
		resolve = func(cfg hotspot.Config) (*hotspot.Model, error) { return hotspot.New(cfg) }
	}
	memo := make(map[string]*hotspot.Model)
	for i, ps := range s.Packages {
		if err := compileCtxErr(opts.Ctx); err != nil {
			return nil, err
		}
		ambientC := ps.AmbientC
		if ambientC == 0 {
			ambientC = 45
		}
		cfg, err := core.BuildConfig(c.fp, core.PackageSpec{
			Kind:      ps.Kind,
			Rconv:     ps.Rconv,
			Direction: ps.Direction,
			Secondary: ps.Secondary,
			AmbientK:  ambientC + 273.15,
		})
		if err != nil {
			return nil, specErrf(fmt.Sprintf("packages[%d]", i), "%v", err)
		}
		fpr := cfg.Fingerprint()
		m := memo[fpr]
		if m == nil {
			if m, err = resolve(cfg); err != nil {
				return nil, specErrf(fmt.Sprintf("packages[%d]", i), "model: %v", err)
			}
			memo[fpr] = m
		}
		label := ps.Label
		if label == "" {
			label = cfg.Package.String()
		}
		c.pkgs = append(c.pkgs, compiledPackage{label: label, model: m})
	}

	if err := c.nominalPrepass(opts.Ctx); err != nil {
		return nil, err
	}
	for i := range c.pkgs {
		pkg := &c.pkgs[i]
		if err := compileCtxErr(opts.Ctx); err != nil {
			return nil, err
		}
		if s.InitialSteady {
			vec, err := pkg.model.BlockPowerVector(c.avgBlockPower)
			if err != nil {
				return nil, fmt.Errorf("scenario: package %q initial steady: %w", pkg.label, err)
			}
			pkg.initTemps = pkg.model.SteadyState(vec).Temps
		} else {
			pkg.initTemps = pkg.model.AmbientState()
		}
	}
	return c, nil
}

func resolveFloorplan(s *Spec) (*floorplan.Floorplan, error) {
	if s.FLP != "" {
		fp, err := floorplan.Parse(strings.NewReader(s.FLP))
		if err != nil {
			return nil, specErrf("flp", "%v", err)
		}
		if err := fp.ValidateNoOverlap(); err != nil {
			return nil, specErrf("flp", "%v", err)
		}
		return fp, nil
	}
	switch s.Floorplan {
	case "", "ev6":
		return floorplan.EV6(), nil
	case "athlon":
		return floorplan.Athlon(), nil
	default:
		return nil, specErrf("floorplan", "unknown floorplan %q (have ev6, athlon, or inline flp)", s.Floorplan)
	}
}

func powerConfig(ps *PowerSpec) (power.Config, error) {
	cfg := power.DefaultWattch()
	if ps == nil {
		return cfg, nil
	}
	set := func(field string, dst *float64, v float64) error {
		if v == 0 {
			return nil
		}
		if !finitePos(v) {
			return specErrf("power."+field, "must be positive and finite, got %g", v)
		}
		*dst = v
		return nil
	}
	for _, f := range []struct {
		name string
		dst  *float64
		v    float64
	}{
		{"clock_hz", &cfg.ClockHz, ps.ClockHz},
		{"clock_tree_w", &cfg.ClockTreeW, ps.ClockTreeW},
		{"leakage_w", &cfg.LeakageW, ps.LeakageW},
		{"leak_ref_c", &cfg.LeakRefC, ps.LeakRefC},
		{"leak_double_c", &cfg.LeakDoubleC, ps.LeakDoubleC},
	} {
		if err := set(f.name, f.dst, f.v); err != nil {
			return cfg, err
		}
	}
	if ps.IdleFrac != 0 {
		if ps.IdleFrac < 0 || ps.IdleFrac > 1 || math.IsNaN(ps.IdleFrac) {
			return cfg, specErrf("power.idle_frac", "must be in [0,1], got %g", ps.IdleFrac)
		}
		cfg.IdleFrac = ps.IdleFrac
	}
	return cfg, nil
}

func (c *Compiled) compilePhase(i int, p Phase) (compiledPhase, error) {
	cp := compiledPhase{name: p.Name}
	cp.steps = int(math.Round(p.Duration / c.dt))
	if cp.steps < 1 {
		cp.steps = 1
	}
	switch {
	case p.Workload != "":
		cp.kind = phaseWorkload
		cp.workload = uarch.Workloads()[p.Workload]
		cp.seed = c.spec.Seed + int64(i)
		cp.cyclesPerStep = c.dt * c.pm.Config().ClockHz
		if cp.cyclesPerStep < 1 {
			return cp, specErrf(fmt.Sprintf("phases[%d]", i),
				"interval %g at %g Hz co-simulates less than one CPU cycle per step", c.dt, c.pm.Config().ClockHz)
		}
	case p.Trace != nil:
		cp.kind = phaseTrace
		cp.rowInterval = p.Trace.Interval
		cols := make([]int, len(p.Trace.Names))
		for ci, name := range p.Trace.Names {
			bi := c.fp.Index(name)
			if bi < 0 {
				return cp, specErrf(fmt.Sprintf("phases[%d].trace.names[%d]", i, ci), "unknown block %q", name)
			}
			cols[ci] = bi
		}
		cp.rows = make([][]float64, len(p.Trace.Rows))
		for r, row := range p.Trace.Rows {
			full := make([]float64, c.fp.N())
			for ci, v := range row {
				full[cols[ci]] = v
			}
			cp.rows[r] = full
		}
	case p.Pulse != nil:
		cp.kind = phasePulse
		cp.pulseBlock = c.fp.Index(p.Pulse.Block)
		if cp.pulseBlock < 0 {
			return cp, specErrf(fmt.Sprintf("phases[%d].pulse.block", i), "unknown block %q", p.Pulse.Block)
		}
		cp.peakW = p.Pulse.PeakW
		cp.baseW = p.Pulse.BaseW
		cp.onS = p.Pulse.OnS
		cp.offS = p.Pulse.OffS
		cp.periodS = p.Pulse.OnS + p.Pulse.OffS
	}
	return cp, nil
}

// producer walks the phase schedule step by step and fills per-step block
// power. Workload phases own a live CPU whose progress is throttled by the
// controller's engagement — the closed loop; trace and pulse phases scale
// their rows by the policy's power multiplier.
type producer struct {
	c       *Compiled
	phase   int
	inPhase int

	// workload phase state
	cpu          *uarch.CPU
	targetCycles float64
	baseCycle    uint64
}

func (c *Compiled) newProducer() *producer {
	p := &producer{c: c}
	p.enterPhase()
	return p
}

func (p *producer) enterPhase() {
	ph := &p.c.phases[p.phase]
	p.cpu = nil
	if ph.kind == phaseWorkload {
		// A fresh, identically-seeded stream per phase entry: every grid
		// cell sees the same nominal instruction sequence and diverges only
		// through closed-loop throttling.
		stream, err := uarch.NewStream(ph.workload, ph.seed)
		if err != nil {
			panic(fmt.Sprintf("scenario: compiled workload rejected: %v", err))
		}
		cpu, err := uarch.NewCPU(uarch.DefaultCPU(), stream)
		if err != nil {
			panic(fmt.Sprintf("scenario: compiled CPU rejected: %v", err))
		}
		p.cpu = cpu
		p.targetCycles = 0
		p.baseCycle = 0
	}
}

func (p *producer) advance() {
	p.inPhase++
	if p.inPhase >= p.c.phases[p.phase].steps {
		p.inPhase = 0
		p.phase = (p.phase + 1) % len(p.c.phases)
		p.enterPhase()
	}
}

// next fills blockPower for the current step and advances the schedule.
// progress is the CPU cycle-progress factor (1 nominal, PerfFactor while
// engaged); vScale/sScale scale dynamic and static power (DVFS voltage and
// frequency terms); rowScale multiplies trace/pulse rows; leakTempsC, when
// non-nil, evaluates workload leakage at those block temperatures instead of
// the reference.
func (p *producer) next(blockPower []float64, progress, vScale, sScale, rowScale float64, leakTempsC []float64) (committed uint64, err error) {
	c := p.c
	ph := &c.phases[p.phase]
	switch ph.kind {
	case phaseWorkload:
		p.targetCycles += ph.cyclesPerStep * progress
		var agg uarch.ActivitySample
		executed := p.cpu.Cycle() - p.baseCycle
		if want := p.targetCycles - float64(executed); want >= 1 {
			samples, err := p.cpu.Run(uint64(want), uint64(want))
			if err != nil {
				return 0, fmt.Errorf("scenario: workload step: %w", err)
			}
			for _, s := range samples {
				agg.Committed += s.Committed
				for u := range agg.Counts {
					agg.Counts[u] += s.Counts[u]
				}
			}
		}
		dyn, static, err := c.pm.ActivityPower(agg, c.dt)
		if err != nil {
			return 0, err
		}
		leak := c.flatLeak
		if leakTempsC != nil {
			if leak, err = c.pm.LeakagePower(leakTempsC); err != nil {
				return 0, err
			}
		}
		for bi := range blockPower {
			blockPower[bi] = dyn[bi]*vScale + static[bi]*sScale + leak[bi]
		}
		committed = agg.Committed
	case phaseTrace:
		tau := float64(p.inPhase) * c.dt
		idx := int(tau/ph.rowInterval+1e-9) % len(ph.rows)
		row := ph.rows[idx]
		for bi := range blockPower {
			blockPower[bi] = row[bi] * rowScale
		}
	case phasePulse:
		tau := math.Mod(float64(p.inPhase)*c.dt, ph.periodS)
		w := ph.baseW
		if tau < ph.onS-1e-12 {
			w = ph.peakW
		}
		for bi := range blockPower {
			blockPower[bi] = 0
		}
		blockPower[ph.pulseBlock] = w * rowScale
	}
	p.advance()
	return committed, nil
}

// compileCtxErr reports whether an Options.Ctx deadline/cancellation should
// abort compilation; a nil ctx never aborts.
func compileCtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("scenario: compile aborted: %w", err)
	}
	return nil
}

// refTemps returns the reference-temperature vector for flat leakage.
func (c *Compiled) refTemps() []float64 {
	ref := make([]float64, c.fp.N())
	for i := range ref {
		ref[i] = c.pm.Config().LeakRefC
	}
	return ref
}

// nominalPrepass runs the schedule once without throttling to record the
// average nominal block power (the InitialSteady operating point) and the
// nominal committed-instruction baseline for PerfPenalty.
func (c *Compiled) nominalPrepass(ctx context.Context) error {
	sums := make([]float64, c.fp.N())
	blockPower := make([]float64, c.fp.N())
	pr := c.newProducer()
	for k := 0; k < c.steps; k++ {
		// Per-step: one workload step can co-simulate millions of CPU
		// cycles, and ctx.Err is noise next to any step's real work.
		if err := compileCtxErr(ctx); err != nil {
			return err
		}
		isWorkload := c.phases[pr.phase].kind == phaseWorkload
		committed, err := pr.next(blockPower, 1, 1, 1, 1, nil)
		if err != nil {
			return err
		}
		if isWorkload {
			c.workloadSteps++
			c.nominalCommitted += committed
		}
		for bi, w := range blockPower {
			sums[bi] += w
		}
	}
	c.avgBlockPower = make([]float64, c.fp.N())
	for bi := range sums {
		c.avgBlockPower[bi] = sums[bi] / float64(c.steps)
	}
	return nil
}

// RunGrid co-simulates every grid cell across a worker pool (workers ≤ 0 =
// GOMAXPROCS) and returns per-cell results indexed like Cells(). Cells are
// split round-robin into per-worker chunks; each worker groups its chunk by
// package and advances every group in lockstep through a
// hotspot.BatchSession, so same-package cells share both the cached
// backward-Euler factor and each step's factor traversal (one batched solve
// for the whole group). Cells themselves stay fully independent (own CPU
// state, own temperatures, own controller), and batching never changes
// per-column arithmetic, so the results are bit-identical for any worker
// count. onCell, when non-nil, is called once per cell as it finishes (any
// order, serialized) — the service's NDJSON streaming hook. ctx, when
// non-nil, aborts unfinished cells with its error once cancelled; finished
// cells keep their results.
func (c *Compiled) RunGrid(ctx context.Context, workers int, onCell func(CellResult)) []CellResult {
	return c.runGrid(ctx, workers, onCell, nil)
}

// TelemetrySink consumes the per-sensor observed temperatures a telemetry
// run records. It is the structural twin of hotspot.TelemetrySink (the
// scenario layer declares its own so the import graph stays flat);
// tstore.Writer satisfies both. Implementations must be safe for concurrent
// use: grid workers append from multiple goroutines, though each individual
// series is only ever written by the one goroutine running its cell.
type TelemetrySink interface {
	Append(series string, tSeconds float64, valueC float64) error
}

// TelemetrySeries returns the series names cell cellIndex emits during a
// telemetry run: one "cell<index>/<block>" per configured sensor, or the
// single "cell<index>/hot" oracle series when the spec has no sensors.
func (c *Compiled) TelemetrySeries(cellIndex int) []string {
	if len(c.sensorIdx) == 0 {
		return []string{fmt.Sprintf("cell%d/hot", cellIndex)}
	}
	out := make([]string, len(c.sensorIdx))
	for i, sv := range c.spec.Sensors {
		out[i] = fmt.Sprintf("cell%d/%s", cellIndex, sv.Block)
	}
	return out
}

// RunGridTelemetry is RunGrid with a telemetry tap: at every controller
// sample step, each cell appends its sensed temperatures to sink — the
// per-sensor observed values (sensor block temperature plus offset), or the
// oracle hottest-block reading when the spec defines no sensors — under the
// series names TelemetrySeries describes, at the sample's simulation time
// in seconds. Sampling happens on the exact values the controller sees, so
// a persisted run is a faithful record of what the DTM loop observed. A
// sink error fails that cell (Err in its CellResult) without disturbing the
// rest of the grid. Telemetry never alters the simulation: results are
// bit-identical to RunGrid's.
func (c *Compiled) RunGridTelemetry(ctx context.Context, workers int, onCell func(CellResult), sink TelemetrySink) []CellResult {
	return c.runGrid(ctx, workers, onCell, sink)
}

func (c *Compiled) runGrid(ctx context.Context, workers int, onCell func(CellResult), sink TelemetrySink) []CellResult {
	cells := c.Cells()
	results := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return results
	}
	var mu sync.Mutex
	emit := func(i int) {
		if onCell != nil {
			mu.Lock()
			onCell(results[i])
			mu.Unlock()
		}
	}
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	pool.RunChunked(all, workers, func(chunk []int) {
		// Group the chunk's cells by package, first-seen order.
		var order []*compiledPackage
		groups := make(map[*compiledPackage][]int)
		for _, i := range chunk {
			pkg := &c.pkgs[cells[i].Index/len(c.policies)]
			if _, ok := groups[pkg]; !ok {
				order = append(order, pkg)
			}
			groups[pkg] = append(groups[pkg], i)
		}
		for _, pkg := range order {
			g := groups[pkg]
			for off := 0; off < len(g); off += rcnet.MaxBatchWidth {
				end := off + rcnet.MaxBatchWidth
				if end > len(g) {
					end = len(g)
				}
				c.runCellGroup(ctx, pkg, cells, g[off:end], results, sink)
				for _, i := range g[off:end] {
					emit(i)
				}
			}
		}
	})
	return results
}

// cellRun is the per-cell mutable state of one lockstep group member.
type cellRun struct {
	pol        dtm.Policy
	ctrl       *dtm.Controller
	pr         *producer
	temps      []float64
	blockPower []float64
	blocksC    []float64
	m          Metrics
	nonWorkPen float64 // engaged non-workload penalty accumulator
	tel        []string // telemetry series names, nil unless a sink is attached
	err        error
	done       bool
}

// runCellGroup runs one ≤MaxBatchWidth group of same-package closed-loop
// cells in lockstep. Per-cell stepping order is unchanged from the serial
// engine (DESIGN.md §6): read the true state, account violations, sample
// sensors on the controller schedule, decide engagement, produce this
// step's power under that engagement — then advance every cell's thermal
// state in one batched solve, so actuation alters the power of the step it
// triggers in and its thermal effect reaches the sensors one step later.
func (c *Compiled) runCellGroup(ctx context.Context, pkg *compiledPackage, cells []Cell, idx []int, results []CellResult, sink TelemetrySink) {
	kk := len(idx)
	model := pkg.model
	runs := make([]*cellRun, kk)
	tview := make([][]float64, kk)
	pview := make([][]float64, kk)
	serrs := make([]error, kk)
	bs := model.NewBatchSession(kk)
	// Per-cell setup with panic containment (a broken workload constructor
	// must fail its own cell, like the per-cell recover it replaced).
	setup := func(k, i int) {
		r := runs[k]
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("scenario: cell %d panicked: %v", i, p)
				r.done = true
			}
		}()
		ctrl, err := dtm.NewController(r.pol, c.dt)
		if err != nil {
			r.err, r.done = err, true
			return
		}
		r.ctrl = ctrl
		r.temps = append([]float64(nil), pkg.initTemps...)
		r.blockPower = make([]float64, c.fp.N())
		r.blocksC = make([]float64, c.fp.N())
		r.pr = c.newProducer()
	}
	for k, i := range idx {
		r := &cellRun{pol: cells[i].Policy}
		r.m.DurationS = float64(c.steps) * c.dt
		r.m.PeakC = math.Inf(-1)
		r.m.ObservedPeakC = math.Inf(-1)
		if sink != nil {
			r.tel = c.TelemetrySeries(cells[i].Index)
		}
		runs[k] = r
		setup(k, i)
	}
	// preStep runs one cell's sense/decide/produce phase for step; panics
	// (a broken schedule or workload) fail their own cell only.
	preStep := func(k int, step int) {
		r := runs[k]
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("scenario: cell %d panicked: %v", idx[k], p)
				r.done = true
			}
		}()
		model.BlocksCInto(r.temps, r.blocksC)
		hot := r.blocksC[0]
		for _, v := range r.blocksC {
			if v > hot {
				hot = v
			}
		}
		if step == 0 {
			r.m.InitialHotC = hot
		}
		if hot > r.m.PeakC {
			r.m.PeakC = hot
		}

		// Sense and decide.
		if r.ctrl.ShouldSample(step) {
			obs := math.Inf(-1)
			if len(c.sensorIdx) == 0 {
				obs = hot
			} else {
				for i, bi := range c.sensorIdx {
					if v := r.blocksC[bi] + c.sensorOff[i]; v > obs {
						obs = v
					}
				}
			}
			if r.tel != nil {
				// Record exactly what the controller is about to see, at the
				// sample's simulation time. A sink failure (disk full, store
				// closed) fails this cell and leaves the group running.
				tSec := float64(step) * c.dt
				if len(c.sensorIdx) == 0 {
					if err := sink.Append(r.tel[0], tSec, obs); err != nil {
						r.err, r.done = err, true
						return
					}
				} else {
					for i, bi := range c.sensorIdx {
						if err := sink.Append(r.tel[i], tSec, r.blocksC[bi]+c.sensorOff[i]); err != nil {
							r.err, r.done = err, true
							return
						}
					}
				}
			}
			if obs > r.m.ObservedPeakC {
				r.m.ObservedPeakC = obs
			}
			r.ctrl.Observe(step, obs)
		}
		engaged := r.ctrl.Engaged(step)

		// Violation accounting against the true state.
		if hot > c.spec.EmergencyC {
			r.m.ViolationS += c.dt
			if engaged {
				r.m.CoveredViolationS += c.dt
			}
		}

		// Produce this step's power under the engagement decision.
		progress, vScale, sScale, rowScale := 1.0, 1.0, 1.0, 1.0
		if engaged {
			progress = r.pol.PerfFactor
			rowScale = r.pol.PowerScale()
			if r.pol.Actuator == dtm.DVFS {
				f := r.pol.PerfFactor
				vScale = f * f     // dynamic: energy/access ∝ V²
				sScale = f * f * f // static: idle/clock power ∝ f·V²
			}
		}
		isWorkload := c.phases[r.pr.phase].kind == phaseWorkload
		var leakTemps []float64
		if isWorkload && !c.spec.DisableLeakageFeedback {
			leakTemps = r.blocksC
		}
		committed, err := r.pr.next(r.blockPower, progress, vScale, sScale, rowScale, leakTemps)
		if err != nil {
			r.err, r.done = err, true
			return
		}
		r.m.Committed += committed
		if engaged {
			r.m.EngagedS += c.dt
			if !isWorkload {
				r.nonWorkPen += c.dt * (1 - r.pol.PerfFactor)
			}
		}
	}
	for step := 0; step < c.steps; step++ {
		var ctxErr error
		if ctx != nil {
			ctxErr = ctx.Err()
		}
		live := 0
		for k := range runs {
			tview[k], pview[k] = nil, nil
			if runs[k].done {
				continue
			}
			if ctxErr != nil {
				runs[k].err = fmt.Errorf("scenario: aborted at step %d/%d: %w", step, c.steps, ctxErr)
				runs[k].done = true
				continue
			}
			preStep(k, step)
			if runs[k].done {
				continue
			}
			tview[k], pview[k] = runs[k].temps, runs[k].blockPower
			live++
		}
		if live == 0 {
			break
		}
		// Advance every live cell's thermal state in one batched solve.
		if err := bs.StepBlockPower(tview, pview, c.dt, serrs); err != nil {
			for k := range runs {
				if tview[k] != nil {
					runs[k].err, runs[k].done = err, true
				}
			}
			break
		}
		for k := range runs {
			if tview[k] != nil && serrs[k] != nil {
				runs[k].err, runs[k].done = serrs[k], true
				serrs[k] = nil
			}
		}
	}
	finish := func(k, i int) {
		r := runs[k]
		defer func() {
			if p := recover(); p != nil {
				r.err = fmt.Errorf("scenario: cell %d panicked: %v", i, p)
			}
		}()
		if r.err == nil {
			c.finishCell(model, r)
		}
	}
	for k, i := range idx {
		finish(k, i)
		results[i] = CellResult{Cell: cells[i], Metrics: runs[k].m, Err: runs[k].err}
	}
}

// finishCell computes a completed cell's closing metrics.
func (c *Compiled) finishCell(model *hotspot.Model, r *cellRun) {
	r.m.Engagements = r.ctrl.Engagements()
	model.BlocksCInto(r.temps, r.blocksC)
	r.m.FinalHotC = r.blocksC[0]
	for _, v := range r.blocksC {
		if v > r.m.FinalHotC {
			r.m.FinalHotC = v
		}
	}
	// The loop samples temperatures before each step, so the state after the
	// last step is otherwise unseen: fold it into the true peak (violation
	// time is a per-step integral and stays as accumulated — the final state
	// has no remaining duration).
	if r.m.FinalHotC > r.m.PeakC {
		r.m.PeakC = r.m.FinalHotC
	}
	r.m.DutyCycle = r.m.EngagedS / r.m.DurationS

	// Performance penalty: instruction-measured over workload time,
	// engagement-fraction over the rest, blended by time share.
	var instrLoss float64
	if c.nominalCommitted > 0 {
		instrLoss = 1 - float64(r.m.Committed)/float64(c.nominalCommitted)
		if instrLoss < 0 {
			instrLoss = 0
		}
	}
	workloadTime := float64(c.workloadSteps) * c.dt
	r.m.PerfPenalty = (instrLoss*workloadTime + r.nonWorkPen) / r.m.DurationS

	if r.m.ViolationS > 0 {
		r.m.ViolationCoverage = r.m.CoveredViolationS / r.m.ViolationS
	} else {
		r.m.ViolationCoverage = 1
	}
}
