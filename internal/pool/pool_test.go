package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllJobs(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		const n = 37
		var done [n]int32
		var workersMade int32
		Run(n, workers, func() func(int) {
			atomic.AddInt32(&workersMade, 1)
			return func(j int) { atomic.AddInt32(&done[j], 1) }
		})
		for j, c := range done {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, j, c)
			}
		}
		if w := int(workersMade); w > n || (workers > 0 && workers <= n && w != workers) {
			t.Fatalf("workers=%d: made %d worker states", workers, w)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	called := false
	Run(0, 4, func() func(int) {
		called = true
		return func(int) {}
	})
	if called {
		t.Fatal("no workers should spin up for an empty job list")
	}
}
