// Package pool provides the fixed-size goroutine worker pool shared by the
// batched thermal-simulation APIs (rcnet.Solver.TransientBatch,
// hotspot.RunSweep, hotspot.RunReplayBatch, scenario.RunGrid). It exists so
// the concurrency pattern — worker clamp, job fan-out, per-worker state,
// completion barrier — lives in exactly one place; DESIGN.md §1.3 records
// the concurrency model (immutable shared operators, one solving session
// per worker) these pools implement.
package pool

import (
	"runtime"
	"sync"
)

// RunChunked deals the given indices round-robin into min(workers, len)
// chunks — workers ≤ 0 uses GOMAXPROCS — and runs each chunk on the pool.
// It is the shared front half of every lockstep batch API (rcnet
// TransientBatch, hotspot sweeps and replay batches, scenario grids): the
// deal is deterministic, so per-chunk grouping downstream is too, and
// results never depend on the worker count. Chunk functions must record
// their own results/errors; RunChunked only guarantees completion.
func RunChunked(indices []int, workers int, run func(chunk []int)) {
	if len(indices) == 0 {
		return
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(indices) {
		w = len(indices)
	}
	chunks := make([][]int, w)
	for i, idx := range indices {
		chunks[i%w] = append(chunks[i%w], idx)
	}
	Run(w, w, func() func(int) {
		return func(c int) { run(chunks[c]) }
	})
}

// Run invokes a job function for every index in [0, n) across a pool of
// worker goroutines and returns once all jobs have completed. workers ≤ 0
// uses GOMAXPROCS; the pool never exceeds n workers. Each worker calls
// newWorker once to obtain its job function, which is where per-worker state
// (scratch buffers, operator caches) is created; jobs are handed to workers
// in index order but may complete in any order. Job functions must record
// their own results/errors — Run only guarantees completion.
func Run(n, workers int, newWorker func() func(job int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newWorker()
			for j := range idx {
				run(j)
			}
		}()
	}
	for j := 0; j < n; j++ {
		idx <- j
	}
	close(idx)
	wg.Wait()
}
