// Package core is the high-level entry point of the reproduction (the
// workload layer of DESIGN.md §1): it wires the synthetic workload engine
// (uarch), the Wattch-style power model (power), the modified HotSpot
// thermal model (hotspot) and the analysis layers (sensors, dtm, ircam)
// into one-call scenarios reproducing the paper's §5 experimental setup.
// The cmd/ tools and examples/ programs are thin shells over this package.
//
// It also implements the paper's stated future-work goal (§6): ascertaining
// the thermal response of an air-cooled chip from measurements taken under
// the oil-cooled IR configuration, by inverting the oil-model influence
// matrix to a power map and forward-modeling the air-sink package.
package core

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/ircam"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Scenario bundles a floorplan, a thermal package and a workload-derived
// power trace.
type Scenario struct {
	Floorplan *floorplan.Floorplan
	Model     *hotspot.Model
	Trace     *trace.PowerTrace
}

// WorkloadSpec selects a synthetic workload run.
type WorkloadSpec struct {
	// Name is one of "gcc", "mcf", "art".
	Name string
	// Cycles simulated after warm-up (default 20M).
	Cycles uint64
	// WarmupCycles run before sampling (default 3M).
	WarmupCycles uint64
	// IntervalCycles between power samples (default 10K ≈ 3.3 µs).
	IntervalCycles uint64
	// Seed for the synthetic stream (default 2009).
	Seed int64
}

func (w WorkloadSpec) defaulted() WorkloadSpec {
	if w.Name == "" {
		w.Name = "gcc"
	}
	if w.Cycles == 0 {
		w.Cycles = 20_000_000
	}
	if w.WarmupCycles == 0 {
		w.WarmupCycles = 3_000_000
	}
	if w.IntervalCycles == 0 {
		w.IntervalCycles = 10_000
	}
	if w.Seed == 0 {
		w.Seed = 2009
	}
	return w
}

// RunWorkload executes the uarch pipeline for the named workload and returns
// the per-block EV6 power trace.
func RunWorkload(spec WorkloadSpec) (*trace.PowerTrace, error) {
	spec = spec.defaulted()
	wl, ok := uarch.Workloads()[spec.Name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q (have gcc, mcf, art)", spec.Name)
	}
	stream, err := uarch.NewStream(wl, spec.Seed)
	if err != nil {
		return nil, err
	}
	cpu, err := uarch.NewCPU(uarch.DefaultCPU(), stream)
	if err != nil {
		return nil, err
	}
	if spec.WarmupCycles > 0 {
		if _, err := cpu.Run(spec.WarmupCycles, spec.WarmupCycles); err != nil {
			return nil, err
		}
	}
	samples, err := cpu.Run(spec.Cycles, spec.IntervalCycles)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(power.DefaultWattch(), floorplan.EV6())
	if err != nil {
		return nil, err
	}
	return pm.Trace(samples)
}

// PackageSpec selects a cooling configuration by name.
type PackageSpec struct {
	// Kind is "air-sink", "oil-silicon" or "water-sink" (forced water over
	// the same sink: an AIR-SINK stack with a much lower convection
	// resistance, one of the §2.1 taxonomy points).
	Kind string
	// Rconv overrides the case-to-ambient (air/water) or oil-boundary
	// convection resistance (K/W); 0 keeps the package default.
	Rconv float64
	// Direction is the oil flow direction ("uniform", "left-to-right",
	// "right-to-left", "bottom-to-top", "top-to-bottom").
	Direction string
	// Secondary enables the secondary heat transfer path.
	Secondary bool
	// AmbientK defaults to 318.15 K (45 °C).
	AmbientK float64
}

// ParseDirection maps a direction name to the model enum.
func ParseDirection(s string) (hotspot.FlowDirection, error) {
	switch s {
	case "", "uniform":
		return hotspot.Uniform, nil
	case "left-to-right", "l2r":
		return hotspot.LeftToRight, nil
	case "right-to-left", "r2l":
		return hotspot.RightToLeft, nil
	case "bottom-to-top", "b2t":
		return hotspot.BottomToTop, nil
	case "top-to-bottom", "t2b":
		return hotspot.TopToBottom, nil
	default:
		return 0, fmt.Errorf("core: unknown flow direction %q", s)
	}
}

// BuildConfig resolves a floorplan and package spec into a full model
// configuration without compiling it. Callers that key caches on the
// configuration's Fingerprint use this to hash before paying for
// hotspot.New.
func BuildConfig(fp *floorplan.Floorplan, spec PackageSpec) (hotspot.Config, error) {
	cfg := hotspot.Config{
		Floorplan: fp,
		AmbientK:  spec.AmbientK,
		Secondary: hotspot.SecondaryPathConfig{Enabled: spec.Secondary},
	}
	switch spec.Kind {
	case "", "air-sink":
		cfg.Package = hotspot.AirSink
		if spec.Rconv > 0 {
			cfg.Air.RConvec = spec.Rconv
		}
	case "water-sink":
		cfg.Package = hotspot.AirSink
		cfg.Air.RConvec = 0.05 // forced water loop
		if spec.Rconv > 0 {
			cfg.Air.RConvec = spec.Rconv
		}
	case "oil-silicon":
		cfg.Package = hotspot.OilSilicon
		dir, err := ParseDirection(spec.Direction)
		if err != nil {
			return hotspot.Config{}, err
		}
		cfg.Oil.Direction = dir
		if spec.Rconv > 0 {
			cfg.Oil.TargetRconv = spec.Rconv
		}
	default:
		return hotspot.Config{}, fmt.Errorf("core: unknown package kind %q (have air-sink, oil-silicon, water-sink)", spec.Kind)
	}
	return cfg, nil
}

// BuildModel constructs a thermal model for the floorplan and package spec.
func BuildModel(fp *floorplan.Floorplan, spec PackageSpec) (*hotspot.Model, error) {
	cfg, err := BuildConfig(fp, spec)
	if err != nil {
		return nil, err
	}
	return hotspot.New(cfg)
}

// NewScenario builds a complete EV6 scenario: workload → power trace →
// thermal model.
func NewScenario(workload WorkloadSpec, pkg PackageSpec) (*Scenario, error) {
	fp := floorplan.EV6()
	tr, err := RunWorkload(workload)
	if err != nil {
		return nil, err
	}
	m, err := BuildModel(fp, pkg)
	if err != nil {
		return nil, err
	}
	return &Scenario{Floorplan: fp, Model: m, Trace: tr}, nil
}

// AveragePowerMap returns the trace's time-average power per block.
func (s *Scenario) AveragePowerMap() map[string]float64 {
	avg := s.Trace.Average()
	p := make(map[string]float64, len(s.Trace.Names))
	for i, n := range s.Trace.Names {
		p[n] = avg[i]
	}
	return p
}

// SteadyState solves the scenario's steady state on the trace's average
// power.
func (s *Scenario) SteadyState() (*hotspot.Result, error) {
	vec, err := s.Model.PowerVector(s.AveragePowerMap())
	if err != nil {
		return nil, err
	}
	return s.Model.SteadyState(vec), nil
}

// RunTransient plays the power trace through the thermal model from the
// average-power steady state and returns the sampled block temperatures.
func (s *Scenario) RunTransient() ([]hotspot.TracePoint, error) {
	ss, err := s.SteadyState()
	if err != nil {
		return nil, err
	}
	state := append([]float64(nil), ss.Temps...)
	return s.Model.RunTrace(state, func(t float64, p []float64) {
		copy(p, s.Trace.At(t))
	}, s.Trace.Duration(), s.Trace.Interval)
}

// ReconcileResult is the output of ReconcileAirFromOil: the paper's §6
// future-work derivation chain.
type ReconcileResult struct {
	// InferredPowerW is the per-block power recovered from the oil-side
	// temperature map (floorplan order).
	InferredPowerW []float64
	// PredictedAirC is the forward-modeled AIR-SINK steady state using the
	// inferred powers.
	PredictedAirC []float64
	// TrueAirC is the AIR-SINK steady state on the true powers (for
	// validation; callers with only measurements won't have it).
	TrueAirC []float64
	// MaxErrorC is the largest per-block |predicted − true|.
	MaxErrorC float64
}

// ReconcileAirFromOil implements the paper's future-work goal: given an
// OIL-SILICON measurement (per-block temperatures under oilModel's
// configuration), recover the power map by inverting the oil model, then
// predict what the same die would do in an AIR-SINK package. truePower (may
// be nil) enables error reporting against the ground truth.
func ReconcileAirFromOil(oilModel, airModel *hotspot.Model, observedOilC []float64, truePower []float64) (*ReconcileResult, error) {
	if oilModel.Floorplan().N() != airModel.Floorplan().N() {
		return nil, fmt.Errorf("core: floorplan mismatch between models")
	}
	inferred, err := ircam.InvertPower(oilModel, observedOilC, 1e-6)
	if err != nil {
		return nil, err
	}
	vec, err := airModel.BlockPowerVector(inferred)
	if err != nil {
		return nil, err
	}
	res := &ReconcileResult{
		InferredPowerW: inferred,
		PredictedAirC:  airModel.SteadyState(vec).BlocksC(),
	}
	if truePower != nil {
		tv, err := airModel.BlockPowerVector(truePower)
		if err != nil {
			return nil, err
		}
		res.TrueAirC = airModel.SteadyState(tv).BlocksC()
		for i := range res.TrueAirC {
			d := res.PredictedAirC[i] - res.TrueAirC[i]
			if d < 0 {
				d = -d
			}
			if d > res.MaxErrorC {
				res.MaxErrorC = d
			}
		}
	}
	return res, nil
}
