package core

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

var quickWL = WorkloadSpec{Cycles: 2_000_000, WarmupCycles: 1_000_000}

func TestRunWorkloadAll(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "art"} {
		spec := quickWL
		spec.Name = name
		tr, err := RunWorkload(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.TotalAverage() <= 5 {
			t.Fatalf("%s: implausibly low power %.1f W", name, tr.TotalAverage())
		}
	}
	bad := quickWL
	bad.Name = "nope"
	if _, err := RunWorkload(bad); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestParseDirection(t *testing.T) {
	for s, want := range map[string]hotspot.FlowDirection{
		"":              hotspot.Uniform,
		"uniform":       hotspot.Uniform,
		"left-to-right": hotspot.LeftToRight,
		"r2l":           hotspot.RightToLeft,
		"b2t":           hotspot.BottomToTop,
		"top-to-bottom": hotspot.TopToBottom,
	} {
		got, err := ParseDirection(s)
		if err != nil || got != want {
			t.Fatalf("ParseDirection(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Fatal("bad direction should fail")
	}
}

func TestBuildModelKinds(t *testing.T) {
	fp := floorplan.EV6()
	air, err := BuildModel(fp, PackageSpec{Kind: "air-sink", Rconv: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if air.RconvEffective() != 0.5 {
		t.Fatalf("air Rconv %g", air.RconvEffective())
	}
	water, err := BuildModel(fp, PackageSpec{Kind: "water-sink"})
	if err != nil {
		t.Fatal(err)
	}
	if water.RconvEffective() != 0.05 {
		t.Fatalf("water Rconv %g", water.RconvEffective())
	}
	oil, err := BuildModel(fp, PackageSpec{Kind: "oil-silicon", Direction: "t2b", Rconv: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if oil.RconvEffective() != 1.0 {
		t.Fatalf("oil Rconv %g", oil.RconvEffective())
	}
	if _, err := BuildModel(fp, PackageSpec{Kind: "peltier"}); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if _, err := BuildModel(fp, PackageSpec{Kind: "oil-silicon", Direction: "bad"}); err == nil {
		t.Fatal("bad direction should fail")
	}
}

func TestScenarioEndToEnd(t *testing.T) {
	s, err := NewScenario(quickWL, PackageSpec{Kind: "oil-silicon", Rconv: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	name, hot := ss.Hottest()
	if hot < 50 || name == "" {
		t.Fatalf("hottest %q %.1f °C implausible", name, hot)
	}
	pts, err := s.RunTransient()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 100 {
		t.Fatalf("only %d transient points", len(pts))
	}
	// Water cooling runs the same die far cooler than air.
	wat, err := NewScenario(quickWL, PackageSpec{Kind: "water-sink"})
	if err != nil {
		t.Fatal(err)
	}
	wss, err := wat.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	_, watHot := wss.Hottest()
	airSc, err := NewScenario(quickWL, PackageSpec{Kind: "air-sink", Rconv: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	ass, err := airSc.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	_, airHot := ass.Hottest()
	if watHot >= airHot {
		t.Fatalf("water %.1f should be cooler than air %.1f", watHot, airHot)
	}
}

func TestReconcileAirFromOil(t *testing.T) {
	// The §6 future-work chain: simulate an oil measurement with known
	// powers, reconcile, and check the air-sink prediction against the
	// direct air-sink solution.
	fp := floorplan.EV6()
	oil, err := BuildModel(fp, PackageSpec{Kind: "oil-silicon", Direction: "l2r"})
	if err != nil {
		t.Fatal(err)
	}
	air, err := BuildModel(fp, PackageSpec{Kind: "air-sink", Rconv: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, fp.N())
	truth[fp.Index("IntReg")] = 2.0
	truth[fp.Index("Dcache")] = 3.0
	truth[fp.Index("L2")] = 6.0
	vec, err := oil.BlockPowerVector(truth)
	if err != nil {
		t.Fatal(err)
	}
	observed := oil.SteadyState(vec).BlocksC()

	res, err := ReconcileAirFromOil(oil, air, observed, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Power recovery should be near-exact (same model family).
	for i := range truth {
		if math.Abs(res.InferredPowerW[i]-truth[i]) > 0.05 {
			t.Fatalf("power recovery block %d: %.3f vs %.3f", i, res.InferredPowerW[i], truth[i])
		}
	}
	// And therefore the air prediction should match the direct solve.
	if res.MaxErrorC > 0.5 {
		t.Fatalf("air-sink prediction off by %.2f °C", res.MaxErrorC)
	}
	// Mismatched floorplans are rejected.
	other, err := BuildModel(floorplan.UniformDie("die", 0.01, 0.01), PackageSpec{Kind: "oil-silicon"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconcileAirFromOil(other, air, observed[:1], nil); err == nil {
		t.Fatal("floorplan mismatch should fail")
	}
}

func TestReconcileDirectionMatters(t *testing.T) {
	// Using a direction-blind oil model for the inversion step leaves a
	// systematic error in the reconciled air prediction — the §5.4 artifact
	// propagating into the §6 workflow.
	fp := floorplan.EV6()
	oilTrue, err := BuildModel(fp, PackageSpec{Kind: "oil-silicon", Direction: "t2b"})
	if err != nil {
		t.Fatal(err)
	}
	oilBlind, err := BuildModel(fp, PackageSpec{Kind: "oil-silicon", Direction: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	air, err := BuildModel(fp, PackageSpec{Kind: "air-sink", Rconv: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, fp.N())
	truth[fp.Index("IntReg")] = 2.0
	truth[fp.Index("Dcache")] = 2.0
	vec, err := oilTrue.BlockPowerVector(truth)
	if err != nil {
		t.Fatal(err)
	}
	observed := oilTrue.SteadyState(vec).BlocksC()

	good, err := ReconcileAirFromOil(oilTrue, air, observed, truth)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := ReconcileAirFromOil(oilBlind, air, observed, truth)
	if err != nil {
		t.Fatal(err)
	}
	if bad.MaxErrorC <= good.MaxErrorC {
		t.Fatalf("direction-blind reconciliation should be worse: %.2f vs %.2f", bad.MaxErrorC, good.MaxErrorC)
	}
}
