package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/trace"
)

// Golden drift gates for the reduced-order backend (DESIGN.md §10): a
// reduced session replaying the paper's Fig. 8 power schedule must track
// the full solver within 0.1 K at every sampled instant of every block,
// without tripping its residual fallback. 0.1 K is well under both the
// paper's reported model-vs-IR-measurement error and any DTM threshold
// granularity, so a reduction inside this gate is observationally
// indistinguishable from the full model.
const reducedDriftGateK = 0.1

// fig8Trace is the paper's §4.1.2 schedule on the EV6 Dcache: a power
// density of 2e6 W/m² pulsed 15 ms on / 85 ms off, one full period.
func fig8Trace(t *testing.T, fp *floorplan.Floorplan) *trace.PowerTrace {
	t.Helper()
	var area float64
	for _, b := range fp.Blocks {
		if b.Name == "Dcache" {
			area = b.Width * b.Height
		}
	}
	if area == 0 {
		t.Fatal("no Dcache block in floorplan")
	}
	tr, err := trace.PulseTrain(fp.Names(), "Dcache", 2e6*area, 15e-3, 85e-3, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// avgPowerVector expands the trace's average power into a node-power
// vector — the warm operating point both replays start from.
func avgPowerVector(t *testing.T, m *Model, tr *trace.PowerTrace) []float64 {
	t.Helper()
	avg := tr.Average()
	cols := m.TraceColumns(tr.Names)
	blocks := make([]float64, m.Floorplan().N())
	for c, bi := range cols {
		if bi >= 0 {
			blocks[bi] = avg[c]
		}
	}
	p, err := m.BlockPowerVector(blocks)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// maxReplayDriftK runs the Fig. 8 replay on a full and a reduced build of
// the same config, both warm-started from the full model's steady state at
// the trace's average power, and returns the worst per-block per-sample
// absolute temperature difference.
func maxReplayDriftK(t *testing.T, cfg Config, tr *trace.PowerTrace) (driftK float64, reduced *Model) {
	t.Helper()
	full, err := New(cfg)
	if err != nil {
		t.Fatalf("full model: %v", err)
	}
	rcfg := cfg
	rcfg.Reduced.Enabled = true
	red, err := New(rcfg)
	if err != nil {
		t.Fatalf("reduced model: %v", err)
	}
	if red.SolverBackend() != "reduced" {
		t.Fatalf("backend = %q, want reduced", red.SolverBackend())
	}
	warm := full.SteadyState(avgPowerVector(t, full, tr)).Temps
	fullPts, err := full.ReplayRows(append([]float64(nil), warm...), tr.Reader())
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	redPts, err := red.ReplayRows(append([]float64(nil), warm...), tr.Reader())
	if err != nil {
		t.Fatalf("reduced replay: %v", err)
	}
	if len(fullPts) != len(redPts) {
		t.Fatalf("point count: full %d vs reduced %d", len(fullPts), len(redPts))
	}
	for i := range fullPts {
		for b := range fullPts[i].BlockC {
			if d := math.Abs(fullPts[i].BlockC[b] - redPts[i].BlockC[b]); d > driftK {
				driftK = d
			}
		}
	}
	return driftK, red
}

// TestReducedDriftEV6Fig8: the reduced backend on the paper's primary
// config (EV6 under oil with the secondary path, the Fig. 8 setup) must
// stay within the drift gate over the Fig. 8 pulse replay.
func TestReducedDriftEV6Fig8(t *testing.T) {
	cfg := Config{
		Floorplan: floorplan.EV6(),
		Package:   OilSilicon,
		AmbientK:  318.15,
		Secondary: SecondaryPathConfig{Enabled: true},
	}
	tr := fig8Trace(t, cfg.Floorplan)
	drift, red := maxReplayDriftK(t, cfg, tr)
	if drift > reducedDriftGateK {
		t.Fatalf("max |ΔT| = %g K over Fig. 8 replay, gate %g K", drift, reducedDriftGateK)
	}
	st := red.SolverStats()
	if st.ReducedFallbacks != 0 {
		t.Fatalf("ReducedFallbacks = %d — replay within the gate must not trip", st.ReducedFallbacks)
	}
	if st.ReducedSteps == 0 {
		t.Fatal("ReducedSteps = 0 — replay never exercised the reduced path")
	}
	if st.ReducedOrder <= 0 {
		t.Fatalf("ReducedOrder = %d", st.ReducedOrder)
	}
}

// TestReducedDriftGridOil: a genuinely truncated basis (order well below
// the node count) on a synthetic grid die under oil with the secondary
// path — the package whose per-block layer stack gives each block several
// RC nodes — must also hold the drift gate. The EV6 case reduces to near
// full order; this one cannot: 36 blocks but ~150 nodes, reduced to an
// order that holds the first Krylov block (37 input columns incl. the
// ambient direction at two shift points) and little more.
func TestReducedDriftGridOil(t *testing.T) {
	fp := floorplan.GridDie(16e-3, 16e-3, 6, 6)
	cfg := Config{
		Floorplan: fp,
		Package:   OilSilicon,
		AmbientK:  318.15,
		Secondary: SecondaryPathConfig{Enabled: true},
		Reduced:   ReducedConfig{Order: 80},
	}
	names := fp.Names()
	tr, err := trace.PulseTrain(names, names[len(names)/2], 4.0, 15e-3, 85e-3, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	drift, red := maxReplayDriftK(t, cfg, tr)
	st := red.SolverStats()
	if n := len(red.AmbientState()); st.ReducedOrder >= n {
		t.Fatalf("order %d not a real reduction of %d nodes", st.ReducedOrder, n)
	}
	if drift > reducedDriftGateK {
		t.Fatalf("max |ΔT| = %g K at order %d, gate %g K", drift, st.ReducedOrder, reducedDriftGateK)
	}
	if st.ReducedFallbacks != 0 {
		t.Fatalf("ReducedFallbacks = %d — replay within the gate must not trip", st.ReducedFallbacks)
	}
}
