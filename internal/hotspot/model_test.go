package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/materials"
)

// paperDie is the validation die of §3.2: 20×20×0.5 mm.
func paperDie() *floorplan.Floorplan {
	return floorplan.UniformDie("die", 0.020, 0.020)
}

func oilModel(t *testing.T, fp *floorplan.Floorplan, dir FlowDirection, targetR float64, secondary bool) *Model {
	t.Helper()
	m, err := New(Config{
		Floorplan: fp,
		Package:   OilSilicon,
		Oil:       OilConfig{Direction: dir, TargetRconv: targetR},
		Secondary: SecondaryPathConfig{Enabled: secondary},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func airModel(t *testing.T, fp *floorplan.Floorplan, rconvec float64, secondary bool) *Model {
	t.Helper()
	m, err := New(Config{
		Floorplan: fp,
		Package:   AirSink,
		Air:       AirSinkConfig{RConvec: rconvec},
		Secondary: SecondaryPathConfig{Enabled: secondary},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOilRconvMatchesCorrelation(t *testing.T) {
	// Uniform-flow model over the paper die must reproduce eq. 1 exactly.
	m := oilModel(t, paperDie(), Uniform, 0, false)
	flow := materials.LaminarFlow{Fluid: materials.MineralOil, Velocity: 10, PlateLen: 0.020}
	want := flow.ConvectionResistance(4e-4)
	if math.Abs(m.RconvEffective()-want)/want > 1e-9 {
		t.Fatalf("R_conv = %g, want %g", m.RconvEffective(), want)
	}
}

func TestOilDirectionalRconvMatchesUniform(t *testing.T) {
	// Area-weighted directional h must integrate to the same overall R_conv
	// as the uniform model (the partition property of eq. 8 vs eq. 2).
	for _, dir := range Directions {
		m := oilModel(t, paperDie(), dir, 0, false)
		u := oilModel(t, paperDie(), Uniform, 0, false)
		if math.Abs(m.RconvEffective()-u.RconvEffective())/u.RconvEffective() > 1e-9 {
			t.Fatalf("%v: R_conv %g vs uniform %g", dir, m.RconvEffective(), u.RconvEffective())
		}
	}
}

func TestTargetRconvRescaling(t *testing.T) {
	m := oilModel(t, paperDie(), Uniform, 0.3, false)
	if math.Abs(m.RconvEffective()-0.3) > 1e-12 {
		t.Fatalf("target R_conv not honored: %g", m.RconvEffective())
	}
	// Steady state of a single uniform block: ΔT = P·(R_si/2 + R_conv).
	p, err := m.PowerVector(map[string]float64{"die": 100})
	if err != nil {
		t.Fatal(err)
	}
	res := m.SteadyState(p)
	rSiHalf := materials.VerticalResistance(materials.Silicon, 0.25e-3, 4e-4)
	want := materials.KToC(m.Config().AmbientK) + 100*(rSiHalf+0.3)
	if math.Abs(res.BlockC("die")-want) > 1e-6 {
		t.Fatalf("steady T = %g °C, want %g", res.BlockC("die"), want)
	}
}

func TestAirSinkSteadyUniform(t *testing.T) {
	// A uniform die under AIR-SINK: die temperature ≈ ambient + P·(R_conv +
	// conduction stack). The stack resistance is small, so the result is
	// dominated by R_convec.
	m := airModel(t, paperDie(), 1.0, false)
	p, _ := m.PowerVector(map[string]float64{"die": 50})
	res := m.SteadyState(p)
	rise := res.BlockC("die") - materials.KToC(m.Config().AmbientK)
	if rise < 50*1.0 || rise > 50*1.4 {
		t.Fatalf("die rise %g °C for 50 W at R_convec=1, want within [50, 70]", rise)
	}
}

func TestSameRconvDifferentGradient(t *testing.T) {
	// Paper contribution #3: with the same equivalent R_conv, OIL-SILICON
	// shows a much larger on-die gradient and hotter hot spot than
	// AIR-SINK, while average temperatures stay comparable.
	fp := floorplan.EV6()
	oil := oilModel(t, fp, Uniform, 1.0, false)
	air := airModel(t, fp, 1.0, false)
	power := map[string]float64{"IntReg": 2.0} // 2 W in ~1 mm² — hot spot
	po, _ := oil.PowerVector(power)
	pa, _ := air.PowerVector(power)
	ro := oil.SteadyState(po)
	ra := air.SteadyState(pa)

	_, hotOil := ro.Hottest()
	_, hotAir := ra.Hottest()
	if hotOil <= hotAir {
		t.Fatalf("oil hot spot %g °C should exceed air hot spot %g °C", hotOil, hotAir)
	}
	if ro.Spread() <= ra.Spread() {
		t.Fatalf("oil spread %g should exceed air spread %g", ro.Spread(), ra.Spread())
	}
	// Cool spot: copper spreading warms remote blocks under AIR-SINK more
	// than the oil config does (paper Fig. 6b).
	_, coolOil := ro.Coolest()
	_, coolAir := ra.Coolest()
	if coolOil >= coolAir {
		t.Fatalf("oil cool spot %g should be cooler than air cool spot %g", coolOil, coolAir)
	}
}

func TestShortTermTimeConstants(t *testing.T) {
	// §4.1.2: τ_short(AIR-SINK) ≈ R_si·C_si is much shorter than
	// τ_short(OIL-SILICON) ≈ R_conv·C_si. Measure by the temperature rise of
	// a pulsed block over 10 ms from the warm steady state.
	fp := floorplan.EV6()
	oil := oilModel(t, fp, Uniform, 1.0, false)
	air := airModel(t, fp, 1.0, false)

	riseAfter := func(m *Model) float64 {
		// Steady state with average power, then a 10 ms burst.
		avg := map[string]float64{"IntReg": 0.3}
		burst := map[string]float64{"IntReg": 2.0}
		pAvg, _ := m.PowerVector(avg)
		pBurst, _ := m.PowerVector(burst)
		state := m.SteadyState(pAvg).Temps
		before := m.NewResult(state).BlockC("IntReg")
		if err := m.Transient(state, pBurst, 10e-3, 1e-4); err != nil {
			t.Fatal(err)
		}
		return m.NewResult(state).BlockC("IntReg") - before
	}
	dAir := riseAfter(air)
	dOil := riseAfter(oil)
	// AIR-SINK responds faster: larger fraction of its (smaller) steady
	// rise happens within 10 ms. Compare normalized approach-to-steady.
	fracAir := approachFraction(t, air, 10e-3)
	fracOil := approachFraction(t, oil, 10e-3)
	if fracAir <= fracOil {
		t.Fatalf("AIR-SINK should approach steady faster in 10ms: air %.3f vs oil %.3f (rises %g, %g)",
			fracAir, fracOil, dAir, dOil)
	}
}

// approachFraction measures how far (0..1) the hot block moves toward its
// new steady state within dur after a power step.
func approachFraction(t *testing.T, m *Model, dur float64) float64 {
	t.Helper()
	avg := map[string]float64{"IntReg": 0.3}
	burst := map[string]float64{"IntReg": 2.0}
	pAvg, _ := m.PowerVector(avg)
	pBurst, _ := m.PowerVector(burst)
	state := m.SteadyState(pAvg).Temps
	t0 := m.NewResult(state).BlockK("IntReg")
	tInf := m.SteadyState(pBurst).BlockK("IntReg")
	if err := m.Transient(state, pBurst, dur, dur/200); err != nil {
		t.Fatal(err)
	}
	t1 := m.NewResult(state).BlockK("IntReg")
	return (t1 - t0) / (tInf - t0)
}

func TestLongTermWarmupFasterForOil(t *testing.T) {
	// §4.1.1: OIL-SILICON reaches steady state much faster from ambient
	// because it lacks the heatsink's huge capacitance.
	fp := floorplan.EV6()
	oil := oilModel(t, fp, Uniform, 1.0, false)
	air := airModel(t, fp, 1.0, false)
	if tauOil, tauAir := oil.DominantTimeConstant(), air.DominantTimeConstant(); tauOil >= tauAir/10 {
		t.Fatalf("oil warmup τ = %g s should be ≪ air τ = %g s", tauOil, tauAir)
	}
}

func TestFlowDirectionMovesHeat(t *testing.T) {
	// Paper §4.2/Fig. 11: a block near the leading edge is cooled best.
	// IntReg sits near the top of the EV6 die: top-to-bottom flow must cool
	// it better than bottom-to-top flow.
	fp := floorplan.EV6()
	power := map[string]float64{"IntReg": 2.0, "Dcache": 2.0}
	tempFor := func(dir FlowDirection) (float64, float64) {
		m := oilModel(t, fp, dir, 0, false)
		p, _ := m.PowerVector(power)
		r := m.SteadyState(p)
		return r.BlockC("IntReg"), r.BlockC("Dcache")
	}
	irTop, dcTop := tempFor(TopToBottom)
	irBot, dcBot := tempFor(BottomToTop)
	if irTop >= irBot {
		t.Fatalf("top-to-bottom flow should cool IntReg: %g vs %g", irTop, irBot)
	}
	// Both hot blocks sit in the upper half of the EV6 die, so both are
	// cooler under top-to-bottom flow (paper Fig. 11 shows exactly this:
	// Dcache 82.4 °C top-to-bottom vs 100.5 °C bottom-to-top). But IntReg,
	// being closer to the top edge, gains relatively more.
	if dcTop >= dcBot {
		t.Fatalf("top-to-bottom flow should cool Dcache too: %g vs %g", dcTop, dcBot)
	}
	gainIR := irBot - irTop
	gainDC := dcBot - dcTop
	if gainIR <= gainDC {
		t.Fatalf("IntReg (nearer the top edge) should gain more from top-to-bottom flow: %g vs %g", gainIR, gainDC)
	}
}

func TestSecondaryPathMattersOnlyForOil(t *testing.T) {
	// Paper Fig. 5: removing the secondary path changes OIL-SILICON
	// temperatures by many degrees but AIR-SINK by <1%.
	fp := floorplan.Athlon()
	powers := floorplan.AthlonPowers()

	hot := func(m *Model) float64 {
		p, err := m.PowerVector(powers)
		if err != nil {
			t.Fatal(err)
		}
		_, h := m.SteadyState(p).Hottest()
		return h
	}
	oilWith := hot(oilModel(t, fp, Uniform, 0, true))
	oilWithout := hot(oilModel(t, fp, Uniform, 0, false))
	airWith := hot(airModel(t, fp, 0.3, true))
	airWithout := hot(airModel(t, fp, 0.3, false))

	if d := oilWithout - oilWith; d < 5 {
		t.Fatalf("OIL-SILICON secondary path should matter: Δhot = %g °C", d)
	}
	if d := math.Abs(airWithout - airWith); d > 1.0 {
		t.Fatalf("AIR-SINK secondary path should be negligible: Δhot = %g °C", d)
	}
}

func TestSecondaryHeatFraction(t *testing.T) {
	fp := floorplan.Athlon()
	m := oilModel(t, fp, Uniform, 0, true)
	p, _ := m.PowerVector(floorplan.AthlonPowers())
	res := m.SteadyState(p)
	frac := m.SecondaryHeatFraction(p, res)
	if frac < 0.1 || frac > 0.9 {
		t.Fatalf("secondary path should carry a significant share for oil: %.2f", frac)
	}
	m2 := airModel(t, fp, 0.3, true)
	p2, _ := m2.PowerVector(floorplan.AthlonPowers())
	res2 := m2.SteadyState(p2)
	if f2 := m2.SecondaryHeatFraction(p2, res2); f2 > 0.05 {
		t.Fatalf("secondary fraction for air-sink should be tiny: %.3f", f2)
	}
}

func TestPowerVectorValidation(t *testing.T) {
	m := oilModel(t, paperDie(), Uniform, 0, false)
	if _, err := m.PowerVector(map[string]float64{"nope": 1}); err == nil {
		t.Fatal("unknown block should error")
	}
	if _, err := m.PowerVector(map[string]float64{"die": -1}); err == nil {
		t.Fatal("negative power should error")
	}
	if _, err := m.BlockPowerVector([]float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing floorplan should fail")
	}
	fp := paperDie()
	if _, err := New(Config{Floorplan: fp, Package: AirSink, Air: AirSinkConfig{SpreaderSide: 0.001}}); err == nil {
		t.Fatal("spreader smaller than die should fail")
	}
	if _, err := New(Config{Floorplan: fp, Package: OilSilicon, Oil: OilConfig{Velocity: -2}}); err == nil {
		t.Fatal("negative velocity should fail")
	}
	if _, err := New(Config{Floorplan: fp, Package: PackageKind(42)}); err == nil {
		t.Fatal("unknown package should fail")
	}
}

func TestResultAccessors(t *testing.T) {
	fp := floorplan.EV6()
	m := airModel(t, fp, 0.5, false)
	p, _ := m.PowerVector(map[string]float64{"IntReg": 2, "L2": 5})
	r := m.SteadyState(p)
	name, hot := r.Hottest()
	if name != "IntReg" {
		t.Fatalf("hottest = %q, want IntReg", name)
	}
	if hot <= r.AverageC() {
		t.Fatal("hottest must exceed average")
	}
	if r.Spread() <= 0 {
		t.Fatal("spread must be positive")
	}
	if math.IsNaN(r.NodeTempK("sink")) {
		t.Fatal("sink node should exist for air model")
	}
	if !math.IsNaN(r.NodeTempK("no-such-node")) {
		t.Fatal("missing node should give NaN")
	}
	g := r.Grid(32, 32)
	if len(g) != 1024 {
		t.Fatalf("grid size %d", len(g))
	}
	// The grid cell at IntReg's centroid matches the block temperature.
	b := fp.Blocks[fp.Index("IntReg")]
	ix := int(b.CenterX() / fp.Width() * 32)
	iy := int(b.CenterY() / fp.Height() * 32)
	if math.Abs(g[iy*32+ix]-r.BlockC("IntReg")) > 1e-9 {
		t.Fatalf("grid value %g vs block %g", g[iy*32+ix], r.BlockC("IntReg"))
	}
}

func TestRunTracePulse(t *testing.T) {
	fp := floorplan.EV6()
	m := oilModel(t, fp, Uniform, 1.0, false)
	state := m.AmbientState()
	irIdx := fp.Index("IntReg")
	pts, err := m.RunTrace(state, func(tm float64, p []float64) {
		for i := range p {
			p[i] = 0
		}
		if tm < 0.05 {
			p[irIdx] = 2
		}
	}, 0.1, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 {
		t.Fatalf("%d trace points", len(pts))
	}
	peak := pts[10].BlockC[irIdx]
	if peak <= pts[1].BlockC[irIdx] || pts[20].BlockC[irIdx] >= peak {
		t.Fatal("pulse trace shape wrong")
	}
}

func TestBoundaryCapacitanceAblation(t *testing.T) {
	// Without the oil boundary-layer capacitance the very-short-term
	// response changes (the paper notes silicon temperature stays almost
	// constant for very short pulses because C_oil is so small; removing
	// C_oil entirely removes that effect). Steady state must be identical.
	fp := paperDie()
	with := oilModel(t, fp, Uniform, 0, false)
	without, err := New(Config{
		Floorplan: fp,
		Package:   OilSilicon,
		Oil:       OilConfig{Direction: Uniform, DisableBoundaryCapacitance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := with.PowerVector(map[string]float64{"die": 100})
	p2, _ := without.PowerVector(map[string]float64{"die": 100})
	s1 := with.SteadyState(p1).BlockC("die")
	s2 := without.SteadyState(p2).BlockC("die")
	if math.Abs(s1-s2) > 1e-6 {
		t.Fatalf("steady state must not depend on C_oil: %g vs %g", s1, s2)
	}
}

func TestEV6ModelNodeCount(t *testing.T) {
	fp := floorplan.EV6()
	m := oilModel(t, fp, LeftToRight, 0, true)
	// silicon 18 + oil 18 + icx 18 + c4 18 + substrate + solder + pcb +
	// oil:pcb = 76.
	if got := m.NodeCount(); got != 76 {
		t.Fatalf("node count %d, want 76", got)
	}
	a := airModel(t, fp, 0.8, false)
	// silicon 18 + tim 18 + spreader 18 + 4 periphery + sink = 59.
	if got := a.NodeCount(); got != 59 {
		t.Fatalf("air node count %d, want 59", got)
	}
}
