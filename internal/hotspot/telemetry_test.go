package hotspot

import (
	"errors"
	"strings"
	"testing"
)

type bufSink struct {
	series []string
	ts     []float64
	vs     []float64
	failAt int // fail the nth append (1-based); 0 = never
}

func (b *bufSink) Append(series string, t, v float64) error {
	if b.failAt > 0 && len(b.series)+1 == b.failAt {
		return errors.New("sink full")
	}
	b.series = append(b.series, series)
	b.ts = append(b.ts, t)
	b.vs = append(b.vs, v)
	return nil
}

func TestEmitTracePoints(t *testing.T) {
	pts := []TracePoint{
		{Time: 0, BlockC: []float64{300, 310}},
		{Time: 1e-3, BlockC: []float64{301, 311}},
	}
	names := []string{"A", "B"}

	var sink bufSink
	if err := EmitTracePoints(&sink, "run1", names, pts); err != nil {
		t.Fatal(err)
	}
	wantSeries := []string{"run1/A", "run1/B", "run1/A", "run1/B"}
	wantV := []float64{300, 310, 301, 311}
	if len(sink.series) != 4 {
		t.Fatalf("%d appends", len(sink.series))
	}
	for i := range wantSeries {
		if sink.series[i] != wantSeries[i] || sink.vs[i] != wantV[i] {
			t.Fatalf("append %d: %s=%v, want %s=%v", i, sink.series[i], sink.vs[i], wantSeries[i], wantV[i])
		}
	}
	if sink.ts[0] != 0 || sink.ts[2] != 1e-3 {
		t.Fatalf("times %v", sink.ts)
	}

	// Empty prefix: series are the bare block names.
	sink = bufSink{}
	if err := EmitTracePoints(&sink, "", names, pts[:1]); err != nil {
		t.Fatal(err)
	}
	if sink.series[0] != "A" || sink.series[1] != "B" {
		t.Fatalf("bare series %v", sink.series)
	}

	// Shape mismatch is an error, not a panic.
	if err := EmitTracePoints(&bufSink{}, "", []string{"A"}, pts); err == nil {
		t.Fatal("shape mismatch accepted")
	}

	// Sink errors propagate with the series attached.
	err := EmitTracePoints(&bufSink{failAt: 3}, "r", names, pts)
	if err == nil || !strings.Contains(err.Error(), `"r/A"`) {
		t.Fatalf("sink error not propagated with series: %v", err)
	}
}
