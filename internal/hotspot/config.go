// Package hotspot implements the paper's primary contribution: a
// HotSpot-style compact thermal model extended with (a) an IR-transparent
// laminar oil flow over the bare silicon die (OIL-SILICON), including the
// flow-direction-dependent local heat transfer coefficient and the oil
// boundary layer's thermal capacitance, and (b) the secondary heat transfer
// path through the on-chip interconnect stack, C4 bumps/underfill, package
// substrate, solder balls and printed-circuit board.
//
// A Model is built from a floorplan plus a Config describing the package; it
// exposes steady-state solves, transient integration and trace-driven
// simulation via the rcnet substrate.
package hotspot

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/materials"
)

// PackageKind selects the cooling configuration.
type PackageKind int

const (
	// AirSink is forced air over a copper heatsink attached through a heat
	// spreader and thermal interface material — the conventional package.
	AirSink PackageKind = iota
	// OilSilicon is laminar IR-transparent oil flowing over the bare die —
	// the IR thermal-imaging configuration.
	OilSilicon
	// Microchannel is integrated liquid cooling in channels etched into the
	// die back side (the paper's §2.1 taxonomy; design-space extension).
	Microchannel
)

func (k PackageKind) String() string {
	switch k {
	case AirSink:
		return "AIR-SINK"
	case OilSilicon:
		return "OIL-SILICON"
	case Microchannel:
		return "MICROCHANNEL"
	default:
		return fmt.Sprintf("PackageKind(%d)", int(k))
	}
}

// FlowDirection is the oil flow direction across the die. Uniform applies
// the plate-average heat transfer coefficient everywhere (no directional
// dependence); the four directional values use the local coefficient h(x)
// measured from the corresponding leading edge (paper eq. 7-8).
type FlowDirection int

const (
	Uniform FlowDirection = iota
	LeftToRight
	RightToLeft
	BottomToTop
	TopToBottom
)

func (d FlowDirection) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case LeftToRight:
		return "left-to-right"
	case RightToLeft:
		return "right-to-left"
	case BottomToTop:
		return "bottom-to-top"
	case TopToBottom:
		return "top-to-bottom"
	default:
		return fmt.Sprintf("FlowDirection(%d)", int(d))
	}
}

// Directions lists the four oriented flow directions in the order of the
// paper's Fig. 11 table.
var Directions = []FlowDirection{LeftToRight, RightToLeft, BottomToTop, TopToBottom}

// AirSinkConfig describes the conventional package. Zero values are replaced
// by HotSpot-like defaults in Defaulted.
type AirSinkConfig struct {
	// TIMThickness is the thermal interface material thickness (m).
	TIMThickness float64
	// SpreaderSide and SpreaderThickness describe the square copper heat
	// spreader (m).
	SpreaderSide, SpreaderThickness float64
	// SinkSide and SinkThickness describe the square copper heatsink base (m).
	SinkSide, SinkThickness float64
	// RConvec is the case-to-ambient convection resistance of the sink (K/W).
	RConvec float64
	// CConvec is the additional convection thermal capacitance (fins plus
	// entrained air mass) lumped with the sink body (J/K).
	CConvec float64
}

// OilConfig describes the IR-imaging cooling setup.
type OilConfig struct {
	// Fluid is the coolant; defaults to materials.MineralOil.
	Fluid materials.Fluid
	// Velocity is the free-stream speed (m/s); default 10 m/s.
	Velocity float64
	// Direction selects the leading edge for the local h(x) model.
	Direction FlowDirection
	// TargetRconv, when positive, uniformly rescales the heat transfer
	// coefficient so the overall convection resistance at the oil-silicon
	// boundary equals this value. The paper uses this to compare AIR-SINK
	// and OIL-SILICON at identical R_conv (Figs. 6, 8, 12).
	TargetRconv float64
	// DisableBoundaryCapacitance drops the oil boundary layer's thermal
	// capacitance (ablation; the paper's eq. 3 includes it).
	DisableBoundaryCapacitance bool
}

// SecondaryPathConfig describes the heat path through the package bottom.
// All layers are modeled per the paper's Fig. 1: interconnect, C4 pads and
// underfill, package substrate, solder balls, PCB, then convection from the
// PCB back side (oil for OIL-SILICON, quiescent case air for AIR-SINK).
type SecondaryPathConfig struct {
	// Enabled turns the secondary path on. The paper shows it is required
	// for OIL-SILICON (Fig. 5a) and negligible for AIR-SINK (Fig. 5b).
	Enabled bool
	// Layer thicknesses (m); zero values take defaults.
	InterconnectThickness float64
	C4Thickness           float64
	SubstrateThickness    float64
	SolderThickness       float64
	PCBThickness          float64
	// SubstrateSide is the square package substrate side (m).
	SubstrateSide float64
	// PCBSide is the square PCB region participating in spreading (m).
	PCBSide float64
	// BacksideRAir is the PCB-to-ambient resistance for AIR-SINK packages
	// (natural convection inside the case), K/W.
	BacksideRAir float64
}

// ReducedConfig selects Krylov model-order reduction for the compiled RC
// network (DESIGN.md §10): the conductance system is projected onto a
// block-Arnoldi basis built from the per-block power-input columns, after
// which a backward-Euler step is a pre-factored dense solve of dimension
// Order and a live session's working state is a few KB. The reduction is
// drift-gated: sampled step residuals against the exact matrix trip an
// automatic fallback onto the full backend (visible in SolverStats).
type ReducedConfig struct {
	// Enabled compiles the model onto the reduced-order solver backend.
	Enabled bool
	// Order caps the Krylov basis size (0 = rcnet.DefaultReducedOrder;
	// always capped at the node count). Larger orders track the full model
	// more closely and step slower.
	Order int
}

// Config assembles a full model description.
type Config struct {
	Floorplan    *floorplan.Floorplan
	DieThickness float64 // silicon thickness (m); default 0.5 mm
	AmbientK     float64 // ambient (and coolant free-stream) temperature, K

	// LateralConstriction scales the silicon-layer block-to-block lateral
	// resistances above the 1-D centroid estimate. Heat crossing a shared
	// edge of two floorplan blocks constricts through the thin die
	// cross-section near that edge, so the effective resistance exceeds
	// (d_i+d_j)/(k·t·w). The default of 3 is calibrated against the
	// paper's Fig. 9 observation (OIL-SILICON retains its hot spot for
	// >4 ms after a power switch while AIR-SINK migrates). Set to any
	// positive value to override; it is an ablation knob in DESIGN.md.
	LateralConstriction float64

	Package   PackageKind
	Air       AirSinkConfig
	Oil       OilConfig
	Micro     MicrochannelConfig
	Secondary SecondaryPathConfig
	Reduced   ReducedConfig
}

// Defaulted returns a copy of cfg with zero values replaced by defaults.
// The air-sink defaults follow the HotSpot distribution (60 mm sink,
// 30 mm spreader, 20 µm interface, R_convec = 0.8 K/W, C_convec = 140 J/K);
// the oil defaults follow the paper's validation setup (mineral oil at
// 10 m/s).
func (cfg Config) Defaulted() Config {
	if cfg.DieThickness == 0 {
		cfg.DieThickness = 0.5e-3
	}
	if cfg.AmbientK == 0 {
		cfg.AmbientK = materials.AmbientK
	}
	if cfg.LateralConstriction == 0 {
		cfg.LateralConstriction = 3
	}
	a := &cfg.Air
	if a.TIMThickness == 0 {
		a.TIMThickness = 20e-6
	}
	if a.SpreaderSide == 0 {
		a.SpreaderSide = 30e-3
	}
	if a.SpreaderThickness == 0 {
		a.SpreaderThickness = 1e-3
	}
	if a.SinkSide == 0 {
		a.SinkSide = 60e-3
	}
	if a.SinkThickness == 0 {
		a.SinkThickness = 6.9e-3
	}
	if a.RConvec == 0 {
		a.RConvec = 0.8
	}
	if a.CConvec == 0 {
		a.CConvec = 140.4
	}
	o := &cfg.Oil
	if o.Fluid.Name == "" {
		o.Fluid = materials.MineralOil
	}
	if o.Velocity == 0 {
		o.Velocity = 10
	}
	s := &cfg.Secondary
	if s.InterconnectThickness == 0 {
		s.InterconnectThickness = 10e-6
	}
	if s.C4Thickness == 0 {
		s.C4Thickness = 100e-6
	}
	if s.SubstrateThickness == 0 {
		s.SubstrateThickness = 1.0e-3
	}
	if s.SolderThickness == 0 {
		s.SolderThickness = 0.6e-3
	}
	if s.PCBThickness == 0 {
		s.PCBThickness = 1.6e-3
	}
	if s.SubstrateSide == 0 {
		s.SubstrateSide = 35e-3
	}
	if s.PCBSide == 0 {
		s.PCBSide = 100e-3
	}
	if s.BacksideRAir == 0 {
		s.BacksideRAir = 100
	}
	return cfg
}

// Validate reports configuration errors.
func (cfg Config) Validate() error {
	if cfg.Floorplan == nil || cfg.Floorplan.N() == 0 {
		return fmt.Errorf("hotspot: config needs a floorplan")
	}
	if cfg.DieThickness <= 0 {
		return fmt.Errorf("hotspot: non-positive die thickness %g", cfg.DieThickness)
	}
	if cfg.AmbientK <= 0 {
		return fmt.Errorf("hotspot: non-positive ambient %g K", cfg.AmbientK)
	}
	if cfg.LateralConstriction < 0 {
		return fmt.Errorf("hotspot: negative lateral constriction")
	}
	if cfg.Reduced.Order < 0 {
		return fmt.Errorf("hotspot: negative reduced order %d", cfg.Reduced.Order)
	}
	switch cfg.Package {
	case AirSink:
		if cfg.Air.SpreaderSide < cfg.Floorplan.Width() || cfg.Air.SpreaderSide < cfg.Floorplan.Height() {
			return fmt.Errorf("hotspot: spreader (%g m) smaller than die", cfg.Air.SpreaderSide)
		}
		if cfg.Air.SinkSide < cfg.Air.SpreaderSide {
			return fmt.Errorf("hotspot: sink (%g m) smaller than spreader (%g m)", cfg.Air.SinkSide, cfg.Air.SpreaderSide)
		}
		if cfg.Air.RConvec <= 0 {
			return fmt.Errorf("hotspot: non-positive R_convec")
		}
	case OilSilicon:
		if cfg.Oil.Velocity <= 0 {
			return fmt.Errorf("hotspot: non-positive oil velocity")
		}
		if cfg.Oil.TargetRconv < 0 {
			return fmt.Errorf("hotspot: negative target R_conv")
		}
	case Microchannel:
		mc := cfg.Micro.defaulted()
		if mc.ChannelWidth <= 0 || mc.ChannelDepth <= 0 || mc.WallWidth <= 0 {
			return fmt.Errorf("hotspot: invalid microchannel geometry")
		}
	default:
		return fmt.Errorf("hotspot: unknown package kind %d", cfg.Package)
	}
	return nil
}
