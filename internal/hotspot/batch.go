package hotspot

import (
	"fmt"
	"math"

	"repro/internal/rcnet"
)

// BatchSession is a K-wide co-simulation stepping context over one compiled
// Model: K independent temperature states advance through one backward-Euler
// step per call, sharing a single factor traversal on the direct solver
// path. It exists for callers that interleave per-state feedback with
// stepping — the scenario engine recomputes every cell's power between
// steps, so it cannot hand the solver a whole trace, but it can hand it all
// cells' right-hand sides at once. Like Session, one BatchSession must not
// be used from more than one goroutine at a time.
type BatchSession struct {
	m          *Model
	bs         *rcnet.BatchSession
	nodePowers [][]float64
	tview      [][]float64 // per-call view: nil where a slot is skipped or invalid
}

// NewBatchSession creates a K-wide stepping context. Safe to call
// concurrently.
func (m *Model) NewBatchSession(width int) *BatchSession {
	if width < 1 {
		width = 1
	}
	b := &BatchSession{
		m:          m,
		bs:         m.solver.NewBatchSession(width),
		nodePowers: make([][]float64, width),
		tview:      make([][]float64, width),
	}
	for k := range b.nodePowers {
		b.nodePowers[k] = make([]float64, m.net.N())
	}
	return b
}

// Model returns the model this session runs against.
func (b *BatchSession) Model() *Model { return b.m }

// Width returns the number of slots.
func (b *BatchSession) Width() int { return len(b.nodePowers) }

// StepBlockPower advances up to Width temperature states (in place) by one
// backward-Euler step of size dt under per-slot block powers (floorplan
// order, W). Slots with a nil temperature vector are skipped. Per-slot
// failures — invalid power values, a stalled iterative solve — land in
// errs and leave that slot's state untouched; the returned error reports
// batch-level failures that apply to every slot. Per-slot results are
// bit-identical to Session.StepBlockPower.
func (b *BatchSession) StepBlockPower(temps, blockPowers [][]float64, dt float64, errs []error) error {
	m := b.m
	kk := len(temps)
	if len(blockPowers) != kk || len(errs) != kk || kk > len(b.nodePowers) {
		return fmt.Errorf("hotspot: batch step shape: %d temps, %d powers, %d errs, width %d",
			kk, len(blockPowers), len(errs), len(b.nodePowers))
	}
	nb := m.cfg.Floorplan.N()
	for k := 0; k < kk; k++ {
		b.tview[k] = nil
		if temps[k] == nil {
			continue
		}
		if len(temps[k]) != m.net.N() {
			errs[k] = fmt.Errorf("hotspot: temperature vector length %d, want %d", len(temps[k]), m.net.N())
			continue
		}
		if len(blockPowers[k]) != nb {
			errs[k] = fmt.Errorf("hotspot: got %d block powers, floorplan has %d", len(blockPowers[k]), nb)
			continue
		}
		np := b.nodePowers[k]
		for i := range np {
			np[i] = 0
		}
		bad := false
		for bi, w := range blockPowers[k] {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				errs[k] = fmt.Errorf("hotspot: invalid power %g for block %d", w, bi)
				bad = true
				break
			}
			np[m.blockNode[bi]] = w
		}
		if bad {
			continue
		}
		b.tview[k] = temps[k]
	}
	return b.bs.StepBE(b.tview[:kk], b.nodePowers[:kk], dt, errs)
}
