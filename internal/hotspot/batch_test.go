package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

// pulseSchedule returns a schedule putting watts on one block for the first
// onFor seconds.
func pulseSchedule(fp *floorplan.Floorplan, block string, watts, onFor float64) func(t float64, p []float64) {
	idx := fp.Index(block)
	return func(t float64, p []float64) {
		for i := range p {
			p[i] = 0
		}
		if t < onFor {
			p[idx] = watts
		}
	}
}

// TestRunTraceBatchMatchesRunTrace: the worker-pool batch on one model must
// reproduce the serial replays exactly.
func TestRunTraceBatchMatchesRunTrace(t *testing.T) {
	fp := floorplan.EV6()
	m := oilModel(t, fp, Uniform, 1.0, true)
	blocks := []string{"IntReg", "Dcache", "L2", "FPMap"}
	var jobs []TraceJob
	var want [][]TracePoint
	for _, b := range blocks {
		sched := pulseSchedule(fp, b, 3, 5e-3)
		pts, err := m.RunTrace(m.AmbientState(), sched, 10e-3, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, pts)
		jobs = append(jobs, TraceJob{
			Temps:       m.AmbientState(),
			Schedule:    sched,
			Duration:    10e-3,
			SampleEvery: 1e-3,
		})
	}
	got, err := m.RunTraceBatch(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if len(got[j]) != len(want[j]) {
			t.Fatalf("job %d: %d points vs %d", j, len(got[j]), len(want[j]))
		}
		for k := range want[j] {
			for i := range want[j][k].BlockC {
				if got[j][k].BlockC[i] != want[j][k].BlockC[i] {
					t.Fatalf("job %d point %d block %d: %g vs %g",
						j, k, i, got[j][k].BlockC[i], want[j][k].BlockC[i])
				}
			}
		}
	}
}

// TestRunSweepAcrossModels: one sweep mixing two different models and a
// repeated model. Jobs sharing a model must not interfere (exercised under
// -race in CI).
func TestRunSweepAcrossModels(t *testing.T) {
	fp := floorplan.EV6()
	oil := oilModel(t, fp, Uniform, 1.0, false)
	air := airModel(t, fp, 1.0, false)
	sched := pulseSchedule(fp, "IntReg", 2, 4e-3)
	job := func(m *Model) SweepJob {
		return SweepJob{Model: m, TraceJob: TraceJob{
			Temps:       m.AmbientState(),
			Schedule:    sched,
			Duration:    8e-3,
			SampleEvery: 1e-3,
		}}
	}
	pts, err := RunSweep([]SweepJob{job(oil), job(air), job(oil)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two oil replays are identical jobs: identical results.
	for k := range pts[0] {
		for i := range pts[0][k].BlockC {
			if pts[0][k].BlockC[i] != pts[2][k].BlockC[i] {
				t.Fatalf("identical oil jobs disagree at point %d block %d", k, i)
			}
		}
	}
	// And a short heat pulse must actually heat IntReg in every replay.
	idx := fp.Index("IntReg")
	for j := range pts {
		rise := pts[j][4].BlockC[idx] - pts[j][0].BlockC[idx]
		if math.IsNaN(rise) || rise <= 0 {
			t.Fatalf("job %d: IntReg did not heat (rise %g)", j, rise)
		}
	}
}
