package hotspot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

// TestThermalReciprocity checks the reciprocity theorem for resistive
// networks: the temperature rise at block i per watt injected at block j
// equals the rise at j per watt at i. This must hold exactly for any
// package because the conductance matrix is symmetric.
func TestThermalReciprocity(t *testing.T) {
	fp := floorplan.EV6()
	for _, m := range []*Model{
		oilModel(t, fp, LeftToRight, 0, true),
		airModel(t, fp, 0.5, false),
	} {
		amb := m.Config().AmbientK
		riseAt := func(src, probe string) float64 {
			p, err := m.PowerVector(map[string]float64{src: 1})
			if err != nil {
				t.Fatal(err)
			}
			return m.SteadyState(p).BlockK(probe) - amb
		}
		pairs := [][2]string{{"IntReg", "L2"}, {"Dcache", "FPMap"}, {"Icache", "IntExec"}}
		for _, pr := range pairs {
			a := riseAt(pr[0], pr[1])
			b := riseAt(pr[1], pr[0])
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("%v reciprocity violated: %g vs %g", pr, a, b)
			}
		}
	}
}

// TestSuperposition checks linearity: the response to a sum of power maps is
// the sum of the responses.
func TestSuperposition(t *testing.T) {
	fp := floorplan.EV6()
	m := oilModel(t, fp, TopToBottom, 1.0, false)
	amb := m.Config().AmbientK
	p1, err := m.PowerVector(map[string]float64{"IntReg": 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.PowerVector(map[string]float64{"L2": 5, "Dcache": 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, len(p1))
	for i := range sum {
		sum[i] = p1[i] + p2[i]
	}
	r1 := m.SteadyState(p1).Temps
	r2 := m.SteadyState(p2).Temps
	rs := m.SteadyState(sum).Temps
	for i := range rs {
		want := (r1[i] - amb) + (r2[i] - amb) + amb
		if math.Abs(rs[i]-want) > 1e-8 {
			t.Fatalf("superposition violated at node %d: %g vs %g", i, rs[i], want)
		}
	}
}

// TestAmbientShiftInvariance checks that temperature *rise* does not depend
// on the ambient (pure offset).
func TestAmbientShiftInvariance(t *testing.T) {
	fp := floorplan.EV6()
	build := func(amb float64) *Model {
		m, err := New(Config{
			Floorplan: fp, AmbientK: amb,
			Package: OilSilicon, Oil: OilConfig{Direction: LeftToRight},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	power := map[string]float64{"IntReg": 2, "L2": 4}
	m1 := build(300)
	m2 := build(330)
	p1, _ := m1.PowerVector(power)
	p2, _ := m2.PowerVector(power)
	r1 := m1.SteadyState(p1)
	r2 := m2.SteadyState(p2)
	for _, b := range fp.Names() {
		rise1 := r1.BlockK(b) - 300
		rise2 := r2.BlockK(b) - 330
		if math.Abs(rise1-rise2) > 1e-9 {
			t.Fatalf("rise at %s depends on ambient: %g vs %g", b, rise1, rise2)
		}
	}
}

// TestEnergyConservationAcrossPackages: at steady state the total heat
// flowing to ambient equals the injected power, for every package and
// direction.
func TestEnergyConservationAcrossPackages(t *testing.T) {
	fp := floorplan.Athlon()
	powers := floorplan.AthlonPowers()
	var total float64
	for _, w := range powers {
		total += w
	}
	configs := []Config{
		{Floorplan: fp, Package: OilSilicon, Oil: OilConfig{Direction: LeftToRight}, Secondary: SecondaryPathConfig{Enabled: true}},
		{Floorplan: fp, Package: OilSilicon, Oil: OilConfig{Direction: TopToBottom}},
		{Floorplan: fp, Package: AirSink, Secondary: SecondaryPathConfig{Enabled: true}},
		{Floorplan: fp, Package: AirSink, Air: AirSinkConfig{RConvec: 0.1}},
	}
	for i, cfg := range configs {
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		p, err := m.PowerVector(powers)
		if err != nil {
			t.Fatal(err)
		}
		res := m.SteadyState(p)
		var out float64
		for _, q := range m.solver.HeatFlowToAmbient(res.Temps) {
			out += q
		}
		if math.Abs(out-total) > 1e-6*total {
			t.Fatalf("config %d: energy not conserved: in %.4f W out %.4f W", i, total, out)
		}
	}
}

// TestMonotoneInRconv: lowering the convection resistance can only lower
// steady-state temperatures.
func TestMonotoneInRconv(t *testing.T) {
	fp := floorplan.EV6()
	power := map[string]float64{"IntReg": 2, "L2": 5}
	prev := math.Inf(1)
	for _, r := range []float64{2.0, 1.0, 0.5, 0.25} {
		m := oilModel(t, fp, Uniform, r, false)
		p, _ := m.PowerVector(power)
		_, hot := m.SteadyState(p).Hottest()
		if hot >= prev {
			t.Fatalf("hot spot did not fall when R_conv dropped to %g: %g vs %g", r, hot, prev)
		}
		prev = hot
	}
}

// Property: for random power assignments, directional models bracket the
// same total heat and every block temperature stays between ambient and the
// all-power-in-one-block worst case.
func TestDirectionalModelsSane(t *testing.T) {
	fp := floorplan.EV6()
	models := make([]*Model, 0, 4)
	for _, d := range Directions {
		models = append(models, oilModel(t, fp, d, 1.0, false))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		power := map[string]float64{}
		for _, n := range fp.Names() {
			if rng.Float64() < 0.3 {
				power[n] = rng.Float64() * 3
			}
		}
		for _, m := range models {
			p, err := m.PowerVector(power)
			if err != nil {
				return false
			}
			res := m.SteadyState(p)
			for _, v := range res.BlocksK() {
				if v < m.Config().AmbientK-1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestLateralConstrictionKnob: larger constriction concentrates heat
// (hotter hot spot), constriction=1 recovers the plain centroid model.
func TestLateralConstrictionKnob(t *testing.T) {
	fp := floorplan.EV6()
	hotFor := func(c float64) float64 {
		m, err := New(Config{
			Floorplan: fp, Package: OilSilicon,
			Oil:                 OilConfig{TargetRconv: 1.0},
			LateralConstriction: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := m.PowerVector(map[string]float64{"IntReg": 2})
		_, hot := m.SteadyState(p).Hottest()
		return hot
	}
	h1, h3, h6 := hotFor(1), hotFor(3), hotFor(6)
	if !(h1 < h3 && h3 < h6) {
		t.Fatalf("hot spot should grow with constriction: %g %g %g", h1, h3, h6)
	}
}

// TestDominantTimeConstantOrdering: the oil network's slowest constant is
// far below the air network's for the same floorplan (the §4.1.1 warm-up
// asymmetry), for several R_conv values.
func TestDominantTimeConstantOrdering(t *testing.T) {
	fp := floorplan.EV6()
	for _, r := range []float64{0.3, 1.0} {
		oil := oilModel(t, fp, Uniform, r, false)
		air := airModel(t, fp, r, false)
		if oil.DominantTimeConstant() >= air.DominantTimeConstant()/20 {
			t.Fatalf("R=%g: oil τ %.2f s not ≪ air τ %.2f s", r,
				oil.DominantTimeConstant(), air.DominantTimeConstant())
		}
	}
}
