package hotspot

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/materials"
	"repro/internal/rcnet"
)

// Model is a compiled thermal model: a floorplan plus a package mapped onto
// an RC network.
type Model struct {
	cfg    Config
	net    *rcnet.Network
	solver *rcnet.Solver

	// silicon node index per floorplan block
	blockNode []int
	// hBlock is the per-block heat transfer coefficient at the oil-silicon
	// boundary (W/m²K); nil for AIR-SINK.
	hBlock []float64
	// rconvEff is the effective total convection resistance of the primary
	// path (K/W): 1/Σ(h_i·A_i) for oil, RConvec for air.
	rconvEff float64
}

// New builds a model from the configuration (defaults applied, validated).
func New(cfg Config) (*Model, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg}
	m.net = rcnet.New(cfg.AmbientK)
	if err := m.build(); err != nil {
		return nil, err
	}
	var s *rcnet.Solver
	var err error
	if cfg.Reduced.Enabled {
		// The power-input columns are the silicon node of every floorplan
		// block — exactly the directions BlockPowerVector injects on.
		// Construction failures fall back to the full backend inside
		// CompileReduced (counted in SolverStats).
		s, err = m.net.CompileReduced(rcnet.ReducedSpec{Inputs: m.blockNode, Order: cfg.Reduced.Order})
	} else {
		s, err = m.net.Compile()
	}
	if err != nil {
		return nil, err
	}
	m.solver = s
	return m, nil
}

// Config returns the (defaulted) configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Floorplan returns the model's floorplan.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.cfg.Floorplan }

// NodeCount returns the total number of RC nodes.
func (m *Model) NodeCount() int { return m.net.N() }

// RconvEffective returns the overall equivalent convection thermal
// resistance of the primary heat path (K/W). For OIL-SILICON this is
// 1/(h_L·A_chip) after any TargetRconv rescaling (paper eq. 1); for AIR-SINK
// it is the configured R_convec.
func (m *Model) RconvEffective() float64 { return m.rconvEff }

// BlockH returns the per-block oil heat-transfer coefficients (W/m²K), or
// nil for an AIR-SINK model.
func (m *Model) BlockH() []float64 {
	if m.hBlock == nil {
		return nil
	}
	out := make([]float64, len(m.hBlock))
	copy(out, m.hBlock)
	return out
}

// build assembles the RC network.
func (m *Model) build() error {
	fp := m.cfg.Floorplan
	tSi := m.cfg.DieThickness

	// --- Silicon layer: one node per block with lateral coupling. ---
	m.blockNode = make([]int, fp.N())
	for i, b := range fp.Blocks {
		m.blockNode[i] = m.net.AddNode("si:"+b.Name, materials.SlabCapacitance(materials.Silicon, tSi, b.Area()))
	}
	m.addLateral(fp, m.blockNode, materials.Silicon, tSi, m.cfg.LateralConstriction)

	switch m.cfg.Package {
	case AirSink:
		if err := m.buildAirSink(); err != nil {
			return err
		}
	case OilSilicon:
		if err := m.buildOilSilicon(); err != nil {
			return err
		}
	case Microchannel:
		if err := m.buildMicrochannel(); err != nil {
			return err
		}
	}
	if m.cfg.Secondary.Enabled {
		if err := m.buildSecondaryPath(); err != nil {
			return err
		}
	}
	return nil
}

// addLateral connects adjacent block nodes within a layer of the given
// material and thickness. The resistance between neighbours is the series
// combination of each block's half-extent perpendicular to the shared edge,
// scaled by the constriction factor (see Config.LateralConstriction):
// R = constriction · (d_i + d_j) / (k · t · w_shared).
func (m *Model) addLateral(fp *floorplan.Floorplan, nodes []int, mat materials.Solid, thickness, constriction float64) {
	for _, adj := range fp.Adjacencies() {
		a, b := fp.Blocks[adj.I], fp.Blocks[adj.J]
		var da, db float64
		if adj.Horizontal {
			da, db = a.Width/2, b.Width/2
		} else {
			da, db = a.Height/2, b.Height/2
		}
		r := constriction * (da + db) / (mat.Conductivity * thickness * adj.SharedLen)
		m.net.ConnectR(nodes[adj.I], nodes[adj.J], r)
	}
}

// buildAirSink assembles TIM, spreader (per-block center + 4 peripheral
// nodes), lumped sink body and the convection stage.
func (m *Model) buildAirSink() error {
	fp := m.cfg.Floorplan
	a := m.cfg.Air
	tSi := m.cfg.DieThickness

	// TIM layer: per-block nodes (negligible lateral conduction).
	timNode := make([]int, fp.N())
	for i, b := range fp.Blocks {
		timNode[i] = m.net.AddNode("tim:"+b.Name, materials.SlabCapacitance(materials.TIM, a.TIMThickness, b.Area()))
		r := materials.VerticalResistance(materials.Silicon, tSi/2, b.Area()) +
			materials.VerticalResistance(materials.TIM, a.TIMThickness/2, b.Area())
		m.net.ConnectR(m.blockNode[i], timNode[i], r)
	}

	// Spreader center: per-block copper nodes with lateral coupling.
	spNode := make([]int, fp.N())
	for i, b := range fp.Blocks {
		spNode[i] = m.net.AddNode("sp:"+b.Name, materials.SlabCapacitance(materials.Copper, a.SpreaderThickness, b.Area()))
		r := materials.VerticalResistance(materials.TIM, a.TIMThickness/2, b.Area()) +
			materials.VerticalResistance(materials.Copper, a.SpreaderThickness/2, b.Area())
		m.net.ConnectR(timNode[i], spNode[i], r)
	}
	m.addLateral(fp, spNode, materials.Copper, a.SpreaderThickness, 1)

	// Spreader periphery: four trapezoidal copper regions beyond the die.
	ring := (a.SpreaderSide - math.Max(fp.Width(), fp.Height())) / 2
	if ring <= 0 {
		return fmt.Errorf("hotspot: spreader does not extend beyond the die")
	}
	periArea := (a.SpreaderSide*a.SpreaderSide - fp.Width()*fp.Height()) / 4
	periNames := []string{"sp:west", "sp:east", "sp:south", "sp:north"}
	periEdges := []string{"left", "right", "bottom", "top"}
	periNode := make([]int, 4)
	for p := 0; p < 4; p++ {
		periNode[p] = m.net.AddNode(periNames[p], materials.SlabCapacitance(materials.Copper, a.SpreaderThickness, periArea))
		edgeBlocks, err := fp.EdgeBlocks(periEdges[p])
		if err != nil {
			return err
		}
		for _, bi := range edgeBlocks {
			b := fp.Blocks[bi]
			var dBlock, shared float64
			if p < 2 { // west/east: heat flows horizontally
				dBlock, shared = b.Width/2, b.Height
			} else {
				dBlock, shared = b.Height/2, b.Width
			}
			r := (dBlock + ring/2) / (materials.Copper.Conductivity * a.SpreaderThickness * shared)
			m.net.ConnectR(spNode[bi], periNode[p], r)
		}
	}

	// Sink body: a single lumped copper node. The high conductivity of
	// copper keeps the real sink nearly isothermal (paper §4.2), so a
	// lumped body preserves both the lateral spreading and the large
	// thermal capacitance (~250× silicon) that dominates the long-term
	// transient.
	sinkCap := materials.SlabCapacitance(materials.Copper, a.SinkThickness, a.SinkSide*a.SinkSide) + a.CConvec
	sink := m.net.AddNode("sink", sinkCap)
	for i, b := range fp.Blocks {
		r := materials.VerticalResistance(materials.Copper, a.SpreaderThickness/2, b.Area()) +
			materials.VerticalResistance(materials.Copper, a.SinkThickness/2, b.Area())
		m.net.ConnectR(spNode[i], sink, r)
	}
	for p := 0; p < 4; p++ {
		r := materials.VerticalResistance(materials.Copper, a.SpreaderThickness/2, periArea) +
			materials.VerticalResistance(materials.Copper, a.SinkThickness/2, periArea)
		m.net.ConnectR(periNode[p], sink, r)
	}

	// Convection: sink to ambient.
	m.net.ConnectAmbientR(sink, a.RConvec)
	m.rconvEff = a.RConvec
	return nil
}

// buildOilSilicon assembles the oil boundary layer over the bare die with
// the flow-direction-dependent local heat transfer coefficient.
func (m *Model) buildOilSilicon() error {
	fp := m.cfg.Floorplan
	o := m.cfg.Oil
	tSi := m.cfg.DieThickness

	plateLen := m.plateLength(o.Direction)
	flow := materials.LaminarFlow{Fluid: o.Fluid, Velocity: o.Velocity, PlateLen: plateLen}
	if err := flow.Validate(); err != nil {
		return err
	}

	// Per-block h from the span along the flow direction (eq. 7-8), or the
	// plate average for Uniform.
	m.hBlock = make([]float64, fp.N())
	for i := range fp.Blocks {
		if o.Direction == Uniform {
			m.hBlock[i] = flow.AvgHeatTransferCoeff()
		} else {
			x1, x2 := m.flowSpan(fp.Blocks[i], o.Direction)
			m.hBlock[i] = flow.SpanHeatTransferCoeff(x1, x2)
		}
	}

	// Effective overall resistance before rescaling: 1/Σ h_i·A_i.
	var hA float64
	for i, b := range fp.Blocks {
		hA += m.hBlock[i] * b.Area()
	}
	natural := 1 / hA
	scale := 1.0
	if o.TargetRconv > 0 {
		scale = natural / o.TargetRconv
		for i := range m.hBlock {
			m.hBlock[i] *= scale
		}
		m.rconvEff = o.TargetRconv
	} else {
		m.rconvEff = natural
	}

	// Boundary-layer thickness and per-block oil capacitance (eq. 3-4).
	delta := flow.BoundaryLayerThickness()
	for i, b := range fp.Blocks {
		rc := 1 / (m.hBlock[i] * b.Area()) // block convection resistance
		var oilCap float64
		if o.DisableBoundaryCapacitance {
			oilCap = 1e-9 // effectively massless, kept positive for the integrator
		} else {
			oilCap = o.Fluid.Density * o.Fluid.SpecificHeat * b.Area() * delta
		}
		oil := m.net.AddNode("oil:"+b.Name, oilCap)
		// Silicon center → boundary layer: half the die conduction plus
		// half the convection resistance; boundary layer → free stream:
		// the other half of the convection resistance. Total silicon-to-
		// ambient resistance is R_si/2 + R_conv as in the paper's Fig. 7b.
		m.net.ConnectR(m.blockNode[i], oil, materials.VerticalResistance(materials.Silicon, tSi/2, b.Area())+rc/2)
		m.net.ConnectAmbientR(oil, rc/2)
	}
	return nil
}

// plateLength returns the die extent along the flow direction.
func (m *Model) plateLength(d FlowDirection) float64 {
	switch d {
	case BottomToTop, TopToBottom:
		return m.cfg.Floorplan.Height()
	default:
		return m.cfg.Floorplan.Width()
	}
}

// flowSpan returns the interval [x1, x2] the block occupies along the flow,
// measured from the leading edge.
func (m *Model) flowSpan(b floorplan.Block, d FlowDirection) (float64, float64) {
	minX, minY, maxX, maxY := m.cfg.Floorplan.Bounds()
	switch d {
	case LeftToRight:
		return b.X - minX, b.X + b.Width - minX
	case RightToLeft:
		return maxX - (b.X + b.Width), maxX - b.X
	case BottomToTop:
		return b.Y - minY, b.Y + b.Height - minY
	case TopToBottom:
		return maxY - (b.Y + b.Height), maxY - b.Y
	default:
		panic("hotspot: flowSpan called with uniform direction")
	}
}

// buildSecondaryPath assembles interconnect → C4/underfill → substrate →
// solder balls → PCB → back-side cooling, per the paper's Fig. 1.
func (m *Model) buildSecondaryPath() error {
	fp := m.cfg.Floorplan
	s := m.cfg.Secondary
	tSi := m.cfg.DieThickness
	dieArea := fp.TotalArea()

	// Interconnect and C4 layers: per-block nodes.
	icxNode := make([]int, fp.N())
	c4Node := make([]int, fp.N())
	for i, b := range fp.Blocks {
		icxNode[i] = m.net.AddNode("icx:"+b.Name, materials.SlabCapacitance(materials.Interconnect, s.InterconnectThickness, b.Area()))
		r := materials.VerticalResistance(materials.Silicon, tSi/2, b.Area()) +
			materials.VerticalResistance(materials.Interconnect, s.InterconnectThickness/2, b.Area())
		m.net.ConnectR(m.blockNode[i], icxNode[i], r)

		c4Node[i] = m.net.AddNode("c4:"+b.Name, materials.SlabCapacitance(materials.C4Underfill, s.C4Thickness, b.Area()))
		r = materials.VerticalResistance(materials.Interconnect, s.InterconnectThickness/2, b.Area()) +
			materials.VerticalResistance(materials.C4Underfill, s.C4Thickness/2, b.Area())
		m.net.ConnectR(icxNode[i], c4Node[i], r)
	}

	// Package substrate: lumped (organic substrates spread laterally well
	// relative to their thinness, and the die covers a large fraction).
	subArea := s.SubstrateSide * s.SubstrateSide
	sub := m.net.AddNode("substrate", materials.SlabCapacitance(materials.Substrate, s.SubstrateThickness, subArea))
	for i, b := range fp.Blocks {
		r := materials.VerticalResistance(materials.C4Underfill, s.C4Thickness/2, b.Area()) +
			materials.VerticalResistance(materials.Substrate, s.SubstrateThickness/2, b.Area())
		m.net.ConnectR(c4Node[i], sub, r)
	}

	// Solder ball field under the substrate.
	solder := m.net.AddNode("solder", materials.SlabCapacitance(materials.SolderBalls, s.SolderThickness, subArea))
	m.net.ConnectR(sub, solder,
		materials.VerticalResistance(materials.Substrate, s.SubstrateThickness/2, subArea)+
			materials.VerticalResistance(materials.SolderBalls, s.SolderThickness/2, subArea))

	// PCB and back-side cooling. The board acts as a fin: heat enters at
	// the package footprint, spreads laterally while convecting from the
	// back side. The fin decay length 1/m with m = sqrt(h/(k·t)) limits the
	// board area that effectively participates, so the convection area is
	// clamped to (s_pkg + 2/m)² (full board if larger).
	switch m.cfg.Package {
	case OilSilicon:
		// The oil bathes the PCB under side too (paper Fig. 1): same
		// free-stream velocity over the PCB-length plate.
		o := m.cfg.Oil
		flow := materials.LaminarFlow{Fluid: o.Fluid, Velocity: o.Velocity, PlateLen: s.PCBSide}
		if err := flow.Validate(); err != nil {
			return fmt.Errorf("hotspot: back-side oil flow: %w", err)
		}
		hPCB := flow.AvgHeatTransferCoeff()
		finM := math.Sqrt(hPCB / (materials.PCB.Conductivity * s.PCBThickness))
		effSide := math.Min(s.PCBSide, s.SubstrateSide+2/finM)
		effArea := effSide * effSide
		pcb := m.net.AddNode("pcb", materials.SlabCapacitance(materials.PCB, s.PCBThickness, effArea))
		// Radial spreading from the package footprint to the effective
		// convection perimeter.
		rSpread := (effSide - s.SubstrateSide) / 2 /
			(materials.PCB.Conductivity * s.PCBThickness * 2 * math.Pi * (effSide + s.SubstrateSide) / 4)
		m.net.ConnectR(solder, pcb,
			materials.VerticalResistance(materials.SolderBalls, s.SolderThickness/2, subArea)+
				materials.VerticalResistance(materials.PCB, s.PCBThickness/2, subArea)+rSpread)
		rc := 1 / (hPCB * effArea)
		oil := m.net.AddNode("oil:pcb", flow.ConvectionCapacitance(effArea))
		m.net.ConnectR(pcb, oil, rc/2)
		m.net.ConnectAmbientR(oil, rc/2)
	case AirSink:
		// Quiescent air inside the case: a large natural-convection
		// resistance, which is why the secondary path barely matters for
		// AIR-SINK (paper Fig. 5b).
		pcbArea := s.PCBSide * s.PCBSide
		pcb := m.net.AddNode("pcb", materials.SlabCapacitance(materials.PCB, s.PCBThickness, pcbArea))
		m.net.ConnectR(solder, pcb,
			materials.VerticalResistance(materials.SolderBalls, s.SolderThickness/2, subArea)+
				materials.VerticalResistance(materials.PCB, s.PCBThickness/2, subArea))
		m.net.ConnectAmbientR(pcb, s.BacksideRAir)
	}
	_ = dieArea
	return nil
}
