package hotspot

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"

	"repro/internal/materials"
)

// fingerprintWriter serializes model-defining values into a hash with a
// stable, platform-independent encoding (IEEE-754 bit patterns, length-
// prefixed strings).
type fingerprintWriter struct {
	h   io.Writer
	buf [8]byte
}

func (w *fingerprintWriter) f64(vs ...float64) {
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
		w.h.Write(w.buf[:])
	}
}

func (w *fingerprintWriter) str(s string) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(len(s)))
	w.h.Write(w.buf[:])
	w.h.Write([]byte(s))
}

func (w *fingerprintWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fingerprintWriter) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *fingerprintWriter) fluid(f materials.Fluid) {
	w.str(f.Name)
	w.f64(f.Conductivity, f.Density, f.SpecificHeat, f.KinViscosity)
}

// Fingerprint returns a stable hex digest of everything that determines the
// compiled thermal model: the floorplan geometry, the (defaulted) package
// configuration, and the material properties that enter through the config
// (coolant fluids). Two configs with equal fingerprints build bit-identical
// models, so the fingerprint is the cache key used by the simulation
// service's compiled-model cache. Solid material constants are compiled into
// the binary; the leading version tag must be bumped if they ever change.
func (cfg Config) Fingerprint() string {
	c := cfg.Defaulted()
	h := sha256.New()
	// Buffer the many small field writes; a large floorplan is thousands of
	// them and this sits on the service's warm request path.
	bw := bufio.NewWriterSize(h, 4096)
	w := &fingerprintWriter{h: bw}
	w.str("hotspot-model-v2")

	fp := c.Floorplan
	if fp == nil {
		w.u64(0)
	} else {
		w.u64(uint64(fp.N()))
		for _, b := range fp.Blocks {
			w.str(b.Name)
			w.f64(b.Width, b.Height, b.X, b.Y)
		}
	}
	w.f64(c.DieThickness, c.AmbientK, c.LateralConstriction)
	w.u64(uint64(c.Package))

	a := c.Air
	w.f64(a.TIMThickness, a.SpreaderSide, a.SpreaderThickness,
		a.SinkSide, a.SinkThickness, a.RConvec, a.CConvec)

	o := c.Oil
	w.fluid(o.Fluid)
	w.f64(o.Velocity, o.TargetRconv)
	w.u64(uint64(o.Direction))
	w.bool(o.DisableBoundaryCapacitance)

	m := c.Micro.defaulted()
	w.fluid(m.Coolant)
	w.f64(m.ChannelWidth, m.ChannelDepth, m.WallWidth, m.Nu, m.FinEfficiency)

	s := c.Secondary
	w.bool(s.Enabled)
	w.f64(s.InterconnectThickness, s.C4Thickness, s.SubstrateThickness,
		s.SolderThickness, s.PCBThickness, s.SubstrateSide, s.PCBSide, s.BacksideRAir)

	// The reduction basis is part of the compiled model: the same physical
	// config at a different order (or unreduced) factors differently, so it
	// must key the factor cache separately.
	w.bool(c.Reduced.Enabled)
	w.u64(uint64(c.Reduced.Order))

	bw.Flush()
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the fingerprint of the (defaulted) configuration this
// model was built from.
func (m *Model) Fingerprint() string { return m.cfg.Fingerprint() }
