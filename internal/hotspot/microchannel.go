package hotspot

import (
	"fmt"
	"math"

	"repro/internal/materials"
)

// MicrochannelConfig describes integrated microchannel liquid cooling
// (Koo et al., cited in the paper's §2.1 cooling taxonomy): parallel
// channels etched into the die back side carrying a forced coolant. For
// fully developed laminar flow in a channel the Nusselt number is a
// constant, so h = Nu·k/D_h independent of position — microchannels have no
// flow-direction hot-spot artifact, only a modest downstream caloric rise
// which this compact model folds into the effective resistance.
type MicrochannelConfig struct {
	// Coolant defaults to water-like properties.
	Coolant materials.Fluid
	// ChannelWidth and ChannelDepth set the rectangular channel section (m).
	ChannelWidth, ChannelDepth float64
	// WallWidth is the fin wall between channels (m).
	WallWidth float64
	// Nu is the laminar fully-developed Nusselt number (default 4.36,
	// constant-heat-flux circular-duct value).
	Nu float64
	// FinEfficiency derates the channel side-wall area (0..1, default 0.7).
	FinEfficiency float64
}

// Water is a convenient coolant for microchannel configurations.
var Water = materials.Fluid{
	Name:         "water",
	Conductivity: 0.6,
	Density:      998,
	SpecificHeat: 4180,
	KinViscosity: 1.0e-6,
}

func (mc MicrochannelConfig) defaulted() MicrochannelConfig {
	if mc.Coolant.Name == "" {
		mc.Coolant = Water
	}
	if mc.ChannelWidth == 0 {
		mc.ChannelWidth = 100e-6
	}
	if mc.ChannelDepth == 0 {
		mc.ChannelDepth = 300e-6
	}
	if mc.WallWidth == 0 {
		mc.WallWidth = 100e-6
	}
	if mc.Nu == 0 {
		mc.Nu = 4.36
	}
	if mc.FinEfficiency == 0 {
		mc.FinEfficiency = 0.7
	}
	return mc
}

// HeatTransferCoeff returns the effective heat transfer coefficient
// referenced to the die footprint area: the in-channel coefficient
// h_ch = Nu·k/D_h scaled by the wetted-area-per-footprint ratio.
func (mc MicrochannelConfig) HeatTransferCoeff() float64 {
	mc = mc.defaulted()
	w, d := mc.ChannelWidth, mc.ChannelDepth
	dh := 2 * w * d / (w + d) // hydraulic diameter of a rectangular duct
	hCh := mc.Nu * mc.Coolant.Conductivity / dh
	// Per channel pitch (w + wall): wetted perimeter contributing = channel
	// floor w + two side walls derated by fin efficiency.
	pitch := w + mc.WallWidth
	areaRatio := (w + 2*d*mc.FinEfficiency) / pitch
	return hCh * areaRatio
}

// buildMicrochannel attaches per-block microchannel cooling directly to the
// silicon nodes. The coolant volume in the channels above each block
// provides the (small) boundary thermal capacitance.
func (m *Model) buildMicrochannel() error {
	mc := m.cfg.Micro.defaulted()
	if mc.ChannelWidth <= 0 || mc.ChannelDepth <= 0 || mc.WallWidth <= 0 {
		return fmt.Errorf("hotspot: invalid microchannel geometry")
	}
	h := mc.HeatTransferCoeff()
	fp := m.cfg.Floorplan
	tSi := m.cfg.DieThickness

	m.hBlock = make([]float64, fp.N())
	var hA float64
	for i, b := range fp.Blocks {
		m.hBlock[i] = h
		hA += h * b.Area()
	}
	m.rconvEff = 1 / hA

	pitch := mc.ChannelWidth + mc.WallWidth
	fillFactor := mc.ChannelWidth * mc.ChannelDepth / (pitch * mc.ChannelDepth) // channel volume share
	for i, b := range fp.Blocks {
		rc := 1 / (h * b.Area())
		coolantVol := b.Area() * mc.ChannelDepth * fillFactor
		cap := mc.Coolant.Density * mc.Coolant.SpecificHeat * coolantVol
		node := m.net.AddNode("chan:"+b.Name, math.Max(cap, 1e-9))
		m.net.ConnectR(m.blockNode[i], node,
			materials.VerticalResistance(materials.Silicon, tSi/2, b.Area())+rc/2)
		m.net.ConnectAmbientR(node, rc/2)
	}
	return nil
}
