package hotspot_test

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// ExampleNew builds the two cooling configurations the paper contrasts and
// compares their steady states at the same overall convection resistance.
func ExampleNew() {
	fp := floorplan.EV6()
	power := map[string]float64{"Dcache": 16.0} // ≈2 W/mm²

	oil, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.OilSilicon,
		AmbientK:  295.15, // 22 °C
		Oil:       hotspot.OilConfig{TargetRconv: 1.0},
	})
	if err != nil {
		panic(err)
	}
	air, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		AmbientK:  295.15,
		Air:       hotspot.AirSinkConfig{RConvec: 1.0},
	})
	if err != nil {
		panic(err)
	}
	for _, m := range []*hotspot.Model{oil, air} {
		vec, err := m.PowerVector(power)
		if err != nil {
			panic(err)
		}
		res := m.SteadyState(vec)
		name, _ := res.Hottest()
		fmt.Printf("%s: hottest block %s, R_conv %.2f K/W\n",
			m.Config().Package, name, m.RconvEffective())
	}
	// Output:
	// OIL-SILICON: hottest block Dcache, R_conv 1.00 K/W
	// AIR-SINK: hottest block Dcache, R_conv 1.00 K/W
}

// ExampleModel_RunTrace drives a model with a time-varying power schedule.
func ExampleModel_RunTrace() {
	fp := floorplan.UniformDie("die", 0.02, 0.02)
	m, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.OilSilicon,
		AmbientK:  300,
	})
	if err != nil {
		panic(err)
	}
	state := m.AmbientState()
	pts, err := m.RunTrace(state, func(t float64, p []float64) {
		if t < 0.5 {
			p[0] = 100 // watts for the first half second
		} else {
			p[0] = 0
		}
	}, 1.0, 0.25)
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("t=%.2fs rise=%.0fK\n", p.Time, p.BlockC[0]-26.85)
	}
	// Output:
	// t=0.00s rise=0K
	// t=0.25s rise=41K
	// t=0.50s rise=65K
	// t=0.75s rise=40K
	// t=1.00s rise=25K
}

// ExampleSession_ReplayRows streams a power trace through a per-goroutine
// simulation session, one backward-Euler step per row. The row source here
// is an in-memory trace; a network stream decoded with trace.NewDecoder
// replays bit-identically through the same path.
func ExampleSession_ReplayRows() {
	model, err := hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{TargetRconv: 1.0},
	})
	if err != nil {
		panic(err)
	}
	// 20 ms of 3 W bursts into the integer register file, 1 ms rows.
	tr, err := trace.PulseTrain(floorplan.EV6().Names(), "IntReg", 3.0, 5e-3, 5e-3, 1e-3, 2)
	if err != nil {
		panic(err)
	}
	session := model.NewSession()
	temps := model.AmbientState()
	points, err := session.ReplayRows(temps, tr.Reader())
	if err != nil {
		panic(err)
	}
	first := points[0].BlockC[floorplan.EV6().Index("IntReg")]
	last := points[len(points)-1].BlockC[floorplan.EV6().Index("IntReg")]
	fmt.Println("points recorded:", len(points))
	fmt.Println("IntReg warmed up:", last > first)
	// Output:
	// points recorded: 21
	// IntReg warmed up: true
}
