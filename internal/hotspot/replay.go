package hotspot

import (
	"fmt"
	"io"
	"math"

	"repro/internal/pool"
	"repro/internal/rcnet"
	"repro/internal/trace"
)

// Session is a per-goroutine simulation context over one compiled Model:
// its own solve workspace, backward-Euler operator cache, steady-state
// warm-start vector and block-power scratch. Any number of Sessions may run
// concurrently against the same Model; one Session must not be shared
// between goroutines. Long-lived services pool Sessions per cached model so
// repeated steady solves warm-start from the previous solution and repeated
// same-interval replays reuse one shifted operator.
type Session struct {
	m         *Model
	rs        *rcnet.Session
	nodePower []float64
}

// NewSession creates an independent simulation context. Safe to call
// concurrently.
func (m *Model) NewSession() *Session {
	return &Session{m: m, rs: m.solver.NewSession(), nodePower: make([]float64, m.net.N())}
}

// Model returns the model this session runs against.
func (s *Session) Model() *Model { return s.m }

// SteadyState solves the equilibrium temperatures for a node-power vector
// (from PowerVector/BlockPowerVector), warm-starting from the session's
// previous steady solution. Results match Model.SteadyState.
func (s *Session) SteadyState(power []float64) *Result {
	return s.m.NewResult(s.rs.SteadyState(power))
}

// TraceColumns maps trace column names onto floorplan block indices: the
// returned slice has one entry per trace column, -1 where the column names
// no block (such columns are ignored during replay).
func (m *Model) TraceColumns(names []string) []int {
	cols := make([]int, len(names))
	fp := m.cfg.Floorplan
	for i, n := range names {
		cols[i] = fp.Index(n)
	}
	return cols
}

// CheckTraceNames verifies that every trace column names a floorplan block.
// Replay itself tolerates unknown columns (they are ignored); strict callers
// — the simulation service — reject them up front with this check.
func (m *Model) CheckTraceNames(names []string) error {
	fp := m.cfg.Floorplan
	for _, n := range names {
		if fp.Index(n) < 0 {
			return fmt.Errorf("hotspot: trace column %q names no floorplan block", n)
		}
	}
	return nil
}

// ReplayRows drives the model with rows streamed from a RowReader: each row
// is one backward-Euler step of the reader's interval, and the temperature
// state is recorded after every step (plus the initial state). Replay
// starts as soon as the first row is available and holds only one row in
// memory, so a transient can proceed while its trace is still arriving over
// a network stream. Replaying an in-memory trace (PowerTrace.Reader) and
// streaming the same rows (trace.NewDecoder) produce bit-identical results.
//
// temps (length = node count) is advanced in place. An empty trace (no
// rows) is an error.
func (s *Session) ReplayRows(temps []float64, rows trace.RowReader) ([]TracePoint, error) {
	m := s.m
	if len(temps) != m.net.N() {
		return nil, fmt.Errorf("hotspot: temperature vector length %d, want %d", len(temps), m.net.N())
	}
	dt := rows.Interval()
	if !(dt > 0) {
		return nil, fmt.Errorf("hotspot: non-positive trace interval %g", dt)
	}
	cols := m.TraceColumns(rows.Names())
	row := make([]float64, len(cols))
	var out []TracePoint
	record := func(t float64) {
		out = append(out, TracePoint{Time: t, BlockC: m.NewResult(temps).BlocksC()})
	}
	record(0)
	t := 0.0
	n := 0
	for {
		err := rows.Next(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hotspot: replay row %d: %w", n+1, err)
		}
		for i := range s.nodePower {
			s.nodePower[i] = 0
		}
		for c, bi := range cols {
			if bi >= 0 {
				s.nodePower[m.blockNode[bi]] = row[c]
			}
		}
		if err := s.rs.StepBE(temps, s.nodePower, dt); err != nil {
			return nil, fmt.Errorf("hotspot: replay row %d: %w", n+1, err)
		}
		t += dt
		n++
		record(t)
	}
	if n == 0 {
		return nil, fmt.Errorf("hotspot: empty trace: no power rows")
	}
	return out, nil
}

// StepBlockPower advances temps (length = node count, in place) by one
// backward-Euler step of size dt under the given per-block power (floorplan
// order, W). It is the building block of closed-loop co-simulation
// (internal/scenario): callers recompute blockPower between steps from
// feedback — throttling, temperature-dependent leakage — that an offline
// trace cannot carry. Same-dt steps reuse the session's cached shifted
// operator, exactly like ReplayRows.
func (s *Session) StepBlockPower(temps, blockPower []float64, dt float64) error {
	m := s.m
	if len(temps) != m.net.N() {
		return fmt.Errorf("hotspot: temperature vector length %d, want %d", len(temps), m.net.N())
	}
	if len(blockPower) != m.cfg.Floorplan.N() {
		return fmt.Errorf("hotspot: got %d block powers, floorplan has %d", len(blockPower), m.cfg.Floorplan.N())
	}
	for i := range s.nodePower {
		s.nodePower[i] = 0
	}
	for bi, w := range blockPower {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("hotspot: invalid power %g for block %d", w, bi)
		}
		s.nodePower[m.blockNode[bi]] = w
	}
	return s.rs.StepBE(temps, s.nodePower, dt)
}

// ReplayRows is Session.ReplayRows on a throwaway session. Safe to call
// concurrently (each call builds its own session).
func (m *Model) ReplayRows(temps []float64, rows trace.RowReader) ([]TracePoint, error) {
	return m.NewSession().ReplayRows(temps, rows)
}

// ReplayJob describes one independent streamed replay for RunReplayBatch.
type ReplayJob struct {
	Model *Model
	// Temps is the initial state (advanced in place); nil starts from
	// ambient.
	Temps []float64
	Rows  trace.RowReader
}

// ReplayBatchResults replays row-streamed jobs across a worker pool
// (workers ≤ 0 = GOMAXPROCS) and reports per-job outcomes: results and
// errors are both indexed like jobs, so callers serving independent
// scenarios can attribute each failure to its own job.
//
// Jobs are split round-robin into per-worker chunks; each worker groups its
// chunk by (model, trace interval) and advances every group in lockstep —
// one row pulled from each live reader per step, then one batched solve for
// all of them — so same-model same-interval jobs pay one factor traversal
// per step instead of one per job. Per-job results are bit-identical to
// Session.ReplayRows at any worker count. Shorter traces simply drop out of
// their group at EOF.
//
// Lockstep polling means each reader must be able to produce its next row
// without another reader in the batch being drained first. Independent
// sources (in-memory traces, separate files or connections — every caller
// in this repository) satisfy that trivially; slices of one sequential
// stream would not, and must be replayed one job per batch.
func ReplayBatchResults(jobs []ReplayJob, workers int) ([][]TracePoint, []error) {
	results := make([][]TracePoint, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	valid := make([]int, 0, len(jobs))
	for j, job := range jobs {
		switch {
		case job.Model == nil:
			errs[j] = fmt.Errorf("nil model")
		case job.Rows == nil:
			errs[j] = fmt.Errorf("nil row source")
		default:
			valid = append(valid, j)
		}
	}
	pool.RunChunked(valid, workers, func(chunk []int) {
		replayRowsChunk(jobs, chunk, results, errs)
	})
	return results, errs
}

// replayRowsChunk groups one worker's jobs by (model, interval) and
// locksteps each group, splitting past rcnet.MaxBatchWidth. Jobs whose
// reader reports a non-positive interval fail up front, exactly like
// ReplayRows, and a reader that panics in Interval() fails its own job.
func replayRowsChunk(jobs []ReplayJob, idx []int, results [][]TracePoint, errs []error) {
	type key struct {
		m  *Model
		dt float64
	}
	interval := func(j int) (dt float64, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		return jobs[j].Rows.Interval(), nil
	}
	var order []key
	groups := make(map[key][]int)
	for _, j := range idx {
		dt, err := interval(j)
		if err != nil {
			errs[j] = err
			continue
		}
		if !(dt > 0) {
			errs[j] = fmt.Errorf("hotspot: non-positive trace interval %g", dt)
			continue
		}
		k := key{jobs[j].Model, dt}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], j)
	}
	for _, k := range order {
		g := groups[k]
		for off := 0; off < len(g); off += rcnet.MaxBatchWidth {
			end := off + rcnet.MaxBatchWidth
			if end > len(g) {
				end = len(g)
			}
			lockstepRows(k.m, k.dt, jobs, g[off:end], results, errs)
		}
	}
}

// lockstepRows replays one ≤MaxBatchWidth group of same-interval streamed
// jobs against one model: each step pulls one row per live reader, expands
// it to node power, and advances every live state in one batched solve.
func lockstepRows(m *Model, dt float64, jobs []ReplayJob, idx []int, results [][]TracePoint, errs []error) {
	kk := len(idx)
	bs := m.solver.NewBatchSession(kk)
	n := m.net.N()
	nb := len(m.blockNode)
	temps := make([][]float64, kk)
	powers := make([][]float64, kk)
	serrs := make([]error, kk)
	cols := make([][]int, kk)
	rowBufs := make([][]float64, kk)
	nrows := make([]int, kk)
	// Per-job setup with panic containment: a broken reader's Names() must
	// fail its own job, exactly like the per-job sessions it replaced.
	setup := func(k, j int) {
		defer func() {
			if r := recover(); r != nil {
				errs[j] = fmt.Errorf("job panicked: %v", r)
				temps[k] = nil
			}
		}()
		temps[k] = jobs[j].Temps
		if temps[k] == nil {
			temps[k] = m.AmbientState()
		}
		if len(temps[k]) != n {
			errs[j] = fmt.Errorf("hotspot: temperature vector length %d, want %d", len(temps[k]), n)
			temps[k] = nil
			return
		}
		powers[k] = make([]float64, n)
		cols[k] = m.TraceColumns(jobs[j].Rows.Names())
		rowBufs[k] = make([]float64, len(cols[k]))
	}
	for k, j := range idx {
		setup(k, j)
	}
	record := func(k, j int, t float64) {
		bc := make([]float64, nb)
		m.BlocksCInto(temps[k], bc)
		results[j] = append(results[j], TracePoint{Time: t, BlockC: bc})
	}
	fail := func(k, j int, err error) {
		errs[j] = err
		results[j] = nil
		temps[k] = nil
	}
	for k, j := range idx {
		if temps[k] != nil {
			record(k, j, 0)
		}
	}
	// nextRow pulls one row with per-job panic containment (a broken reader
	// must fail its own job, not the batch).
	nextRow := func(k, j int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		return jobs[j].Rows.Next(rowBufs[k])
	}
	t := 0.0
	for {
		live := 0
		for k, j := range idx {
			if temps[k] == nil {
				continue
			}
			err := nextRow(k, j)
			if err == io.EOF {
				if nrows[k] == 0 {
					fail(k, j, fmt.Errorf("hotspot: empty trace: no power rows"))
				} else {
					temps[k] = nil // finished; results stand
				}
				continue
			}
			if err != nil {
				fail(k, j, fmt.Errorf("hotspot: replay row %d: %w", nrows[k]+1, err))
				continue
			}
			np := powers[k]
			for i := range np {
				np[i] = 0
			}
			for c, bi := range cols[k] {
				if bi >= 0 {
					np[m.blockNode[bi]] = rowBufs[k][c]
				}
			}
			live++
		}
		if live == 0 {
			return
		}
		if err := bs.StepBE(temps, powers, dt, serrs); err != nil {
			for k, j := range idx {
				if temps[k] != nil {
					fail(k, j, fmt.Errorf("hotspot: replay row %d: %w", nrows[k]+1, err))
				}
			}
			return
		}
		t += dt
		for k, j := range idx {
			if temps[k] == nil {
				continue
			}
			if serrs[k] != nil {
				fail(k, j, fmt.Errorf("hotspot: replay row %d: %w", nrows[k]+1, serrs[k]))
				serrs[k] = nil
				continue
			}
			nrows[k]++
			record(k, j, t)
		}
	}
}

// RunReplayBatch is ReplayBatchResults with the sweep-style error contract:
// the first error (by job order) is returned after all jobs finish.
func RunReplayBatch(jobs []ReplayJob, workers int) ([][]TracePoint, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	results, errs := ReplayBatchResults(jobs, workers)
	for j, err := range errs {
		if err != nil {
			return results, fmt.Errorf("hotspot: replay job %d: %w", j, err)
		}
	}
	return results, nil
}
