package hotspot

import (
	"fmt"

	"repro/internal/rcnet"
)

// StreamSession is a per-user streaming simulation context over a
// reduced-order Model (Config.Reduced.Enabled): thermal state is held in
// reduced coordinates and one fixed-dt backward-Euler step costs O(order²),
// independent of the node count (DESIGN.md §10.4). Power updates are
// per-block and only paid for when they arrive (SetBlockPower projects the
// vector once); temperatures are expanded on demand. Sampled steps are
// verified against the exact matrix, and a tripped residual gate
// transparently moves the session onto the model's full backend.
//
// A StreamSession must not be shared between goroutines; a serving host
// keeps one per streamed user.
type StreamSession struct {
	m       *Model
	rs      *rcnet.ReducedSession
	nodeP   []float64
	scratch []float64
}

// NewStreamSession creates a streaming context stepping at a fixed dt. The
// model must have been built with Config.Reduced.Enabled.
func (m *Model) NewStreamSession(dt float64) (*StreamSession, error) {
	rs, err := m.solver.NewReducedSession(dt)
	if err != nil {
		return nil, err
	}
	return &StreamSession{m: m, rs: rs, nodeP: make([]float64, m.net.N())}, nil
}

// Model returns the model this session runs against.
func (s *StreamSession) Model() *Model { return s.m }

// Reduced reports whether the session still steps in reduced coordinates
// (false once the residual gate tripped it onto the full backend).
func (s *StreamSession) Reduced() bool { return s.rs.Reduced() }

// Order returns the reduced dimension the session steps in, 0 on the full
// path.
func (s *StreamSession) Order() int { return s.rs.Order() }

// Start seeds the session's node temperatures (Kelvin), typically from
// Model.SteadyState at the user's initial operating point.
func (s *StreamSession) Start(temps []float64) error {
	return s.rs.Start(temps)
}

// SetBlockPower installs per-block power (Watts, floorplan order) for
// subsequent steps. Call only when the power actually changes: the vector
// is expanded and projected here so that Step stays O(order²).
func (s *StreamSession) SetBlockPower(perBlock []float64) error {
	fp := s.m.cfg.Floorplan
	if len(perBlock) != fp.N() {
		return fmt.Errorf("hotspot: block power length %d, want %d", len(perBlock), fp.N())
	}
	for i := range s.nodeP {
		s.nodeP[i] = 0
	}
	for i, p := range perBlock {
		s.nodeP[s.m.blockNode[i]] = p
	}
	return s.rs.SetPower(s.nodeP)
}

// Step advances the state by one backward-Euler step of the session's dt
// under the current power.
func (s *StreamSession) Step() error { return s.rs.Step() }

// Temps writes the current node temperatures (Kelvin) into dst (allocated
// when nil) and returns it.
func (s *StreamSession) Temps(dst []float64) []float64 { return s.rs.Temps(dst) }

// BlockTempsC writes the current per-block temperatures in Celsius into dst
// (allocated when nil) and returns it — the read-out a streaming thermal
// feed serves. O(n·order) for the expansion plus O(blocks) for the
// aggregation.
func (s *StreamSession) BlockTempsC(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, s.m.cfg.Floorplan.N())
	}
	if s.scratch == nil {
		s.scratch = make([]float64, s.m.net.N())
	}
	s.rs.Temps(s.scratch)
	s.m.BlocksCInto(s.scratch, dst)
	return dst
}
