package hotspot

import "fmt"

// TelemetrySink consumes per-block temperature telemetry emitted by trace
// replays. Implementations must accept rows per series in non-decreasing
// time order; rows for different series may interleave freely. The tstore
// package's Writer satisfies this, as does any in-memory buffer a test
// supplies. The simulation layer depends only on this interface so the
// store's import graph stays one-directional (tstore never imports hotspot).
type TelemetrySink interface {
	Append(series string, tSeconds float64, valueC float64) error
}

// EmitTracePoints streams a replay's sampled block temperatures into sink,
// one series per block named "<prefix>/<block>" (or just the block name
// when prefix is empty). Points must all carry len(names) temperatures —
// the shape RunTrace, RunSweep and ReplayRows produce against the model the
// names came from. The first sink error aborts the emit and is returned
// with the offending series attached.
func EmitTracePoints(sink TelemetrySink, prefix string, names []string, pts []TracePoint) error {
	for i, p := range pts {
		if len(p.BlockC) != len(names) {
			return fmt.Errorf("hotspot: telemetry point %d has %d blocks, names has %d", i, len(p.BlockC), len(names))
		}
		for b, name := range names {
			series := name
			if prefix != "" {
				series = prefix + "/" + name
			}
			if err := sink.Append(series, p.Time, p.BlockC[b]); err != nil {
				return fmt.Errorf("hotspot: telemetry sink, series %q: %w", series, err)
			}
		}
	}
	return nil
}
