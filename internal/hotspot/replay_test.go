package hotspot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/trace"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Config{
		Floorplan: floorplan.EV6(),
		Package:   AirSink,
		AmbientK:  318.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func pulseTrace(t *testing.T, fp *floorplan.Floorplan) *trace.PowerTrace {
	t.Helper()
	tr, err := trace.PulseTrain(fp.Names(), "IntReg", 3.0, 5e-3, 5e-3, 1e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReplayStreamedMatchesLoaded: replaying rows streamed through the
// ptrace decoder must be bit-identical to replaying the same in-memory
// trace through its cursor.
func TestReplayStreamedMatchesLoaded(t *testing.T) {
	m := testModel(t)
	tr := pulseTrace(t, m.Floorplan())

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.NewDecoder(&buf, trace.DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := m.ReplayRows(m.AmbientState(), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := m.ReplayRows(m.AmbientState(), dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(streamed) {
		t.Fatalf("point count: %d vs %d", len(loaded), len(streamed))
	}
	for i := range loaded {
		if loaded[i].Time != streamed[i].Time {
			t.Fatalf("point %d: time %.17g vs %.17g", i, loaded[i].Time, streamed[i].Time)
		}
		for b := range loaded[i].BlockC {
			if loaded[i].BlockC[b] != streamed[i].BlockC[b] {
				t.Fatalf("point %d block %d: %.17g vs %.17g (not bit-identical)",
					i, b, loaded[i].BlockC[b], streamed[i].BlockC[b])
			}
		}
	}
}

// TestReplayMatchesRunTrace: the streaming replay and the schedule-driven
// trace API integrate the same physics.
func TestReplayMatchesRunTrace(t *testing.T) {
	m := testModel(t)
	tr := pulseTrace(t, m.Floorplan())
	cols := m.TraceColumns(tr.Names)

	viaSchedule, err := m.RunTrace(m.AmbientState(), func(tm float64, p []float64) {
		row := tr.At(tm)
		for c, bi := range cols {
			if bi >= 0 {
				p[bi] = row[c]
			}
		}
	}, tr.Duration(), tr.Interval)
	if err != nil {
		t.Fatal(err)
	}
	viaReplay, err := m.ReplayRows(m.AmbientState(), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(viaSchedule) != len(viaReplay) {
		t.Fatalf("point count: %d vs %d", len(viaSchedule), len(viaReplay))
	}
	for i := range viaSchedule {
		for b := range viaSchedule[i].BlockC {
			if d := math.Abs(viaSchedule[i].BlockC[b] - viaReplay[i].BlockC[b]); d > 1e-9 {
				t.Fatalf("point %d block %d: |%g - %g| = %g", i, b,
					viaSchedule[i].BlockC[b], viaReplay[i].BlockC[b], d)
			}
		}
	}
}

// TestSessionSteadyMatchesSolver: the warm-started session steady solve
// returns the same answer as the stateless one, on repeated and varied
// power maps.
func TestSessionSteadyMatchesSolver(t *testing.T) {
	m := testModel(t)
	se := m.NewSession()
	for _, watts := range []float64{2, 2, 5, 0.5} {
		p, err := m.PowerVector(map[string]float64{"IntReg": watts, "Dcache": watts / 2})
		if err != nil {
			t.Fatal(err)
		}
		want := m.SteadyState(p)
		got := se.SteadyState(p)
		for i := range want.Temps {
			if d := math.Abs(want.Temps[i] - got.Temps[i]); d > 1e-9 {
				t.Fatalf("watts=%g node %d: session %.12g vs solver %.12g", watts, i, got.Temps[i], want.Temps[i])
			}
		}
	}
}

// TestRunReplayBatchSharedModel: N jobs against one model match N serial
// replays.
func TestRunReplayBatchSharedModel(t *testing.T) {
	m := testModel(t)
	tr := pulseTrace(t, m.Floorplan())
	const n = 4
	jobs := make([]ReplayJob, n)
	for i := range jobs {
		jobs[i] = ReplayJob{Model: m, Rows: tr.Reader()}
	}
	batch, err := RunReplayBatch(jobs, n)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := m.ReplayRows(m.AmbientState(), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	for j := range batch {
		if len(batch[j]) != len(serial) {
			t.Fatalf("job %d: %d points vs %d", j, len(batch[j]), len(serial))
		}
		for i := range serial {
			for b := range serial[i].BlockC {
				if batch[j][i].BlockC[b] != serial[i].BlockC[b] {
					t.Fatalf("job %d point %d block %d differs", j, i, b)
				}
			}
		}
	}
}

// TestEmptyTraceErrors: a zero-length trace must yield a descriptive error
// from every batch entry point, never a panic. (Regression: these paths
// assumed fully-materialized traces and reached an index panic via
// PowerTrace.At on an empty trace.)
func TestEmptyTraceErrors(t *testing.T) {
	m := testModel(t)
	empty, err := trace.New(m.Floorplan().Names(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}

	// Batch replay of an empty trace: Duration() == 0.
	_, err = m.RunTraceBatch([]TraceJob{{
		Temps:       m.AmbientState(),
		Schedule:    func(tm float64, p []float64) { copy(p, empty.At(tm)) },
		Duration:    empty.Duration(),
		SampleEvery: empty.Interval,
	}}, 0)
	if err == nil || !strings.Contains(err.Error(), "job 0") || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("RunTraceBatch empty trace: got %v", err)
	}

	// Sweep with an empty trace.
	_, err = RunSweep([]SweepJob{{Model: m, TraceJob: TraceJob{
		Temps:       m.AmbientState(),
		Schedule:    func(tm float64, p []float64) { copy(p, empty.At(tm)) },
		Duration:    empty.Duration(),
		SampleEvery: empty.Interval,
	}}}, 0)
	if err == nil || !strings.Contains(err.Error(), "job 0") || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("RunSweep empty trace: got %v", err)
	}

	// Streaming replay of an empty trace.
	_, err = m.ReplayRows(m.AmbientState(), empty.Reader())
	if err == nil || !strings.Contains(err.Error(), "no power rows") {
		t.Fatalf("ReplayRows empty trace: got %v", err)
	}
}

// TestSweepPanicBecomesError: a schedule that panics mid-replay (the old
// empty-trace failure mode) fails its own job without crashing the process,
// and well-formed sibling jobs still complete.
func TestSweepPanicBecomesError(t *testing.T) {
	m := testModel(t)
	tr := pulseTrace(t, m.Floorplan())
	cols := m.TraceColumns(tr.Names)
	good := SweepJob{Model: m, TraceJob: TraceJob{
		Temps: m.AmbientState(),
		Schedule: func(tm float64, p []float64) {
			row := tr.At(tm)
			for c, bi := range cols {
				if bi >= 0 {
					p[bi] = row[c]
				}
			}
		},
		Duration:    tr.Duration(),
		SampleEvery: tr.Interval,
	}}
	bad := good
	bad.Schedule = func(tm float64, p []float64) { panic("schedule exploded") }
	results, err := RunSweep([]SweepJob{bad, good}, 2)
	if err == nil || !strings.Contains(err.Error(), "job 0") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want job-0 panic error, got %v", err)
	}
	if results[1] == nil {
		t.Fatal("good job should still have completed")
	}
}

// TestShortTraceStillRuns: a trace shorter than one sample interval is not
// an error — it runs one shortened step.
func TestShortTraceStillRuns(t *testing.T) {
	m := testModel(t)
	tr, err := trace.Step(m.Floorplan().Names(), map[string]float64{"IntReg": 2}, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := m.ReplayRows(m.AmbientState(), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 { // initial state + one step
		t.Fatalf("got %d points, want 2", len(pts))
	}
}
