package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func microModel(t *testing.T, fp *floorplan.Floorplan) *Model {
	t.Helper()
	m, err := New(Config{Floorplan: fp, Package: Microchannel})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMicrochannelHeatTransferCoeff(t *testing.T) {
	mc := MicrochannelConfig{}.defaulted()
	h := mc.HeatTransferCoeff()
	// Water microchannels reach effective h of order 10^4-10^5 W/m²K —
	// orders of magnitude above the oil flat-plate flow.
	if h < 1e4 || h > 1e6 {
		t.Fatalf("microchannel h = %g W/m²K outside the expected range", h)
	}
}

func TestMicrochannelFarCoolerThanOil(t *testing.T) {
	fp := floorplan.EV6()
	micro := microModel(t, fp)
	oil := oilModel(t, fp, Uniform, 0, false)
	if micro.RconvEffective() >= oil.RconvEffective()/10 {
		t.Fatalf("microchannel R_conv %g should be ≪ oil %g", micro.RconvEffective(), oil.RconvEffective())
	}
	power := map[string]float64{"IntReg": 2, "L2": 6}
	pm, _ := micro.PowerVector(power)
	po, _ := oil.PowerVector(power)
	_, hotMicro := micro.SteadyState(pm).Hottest()
	_, hotOil := oil.SteadyState(po).Hottest()
	if hotMicro >= hotOil {
		t.Fatalf("microchannel hot spot %g should undercut oil %g", hotMicro, hotOil)
	}
}

func TestMicrochannelNoDirectionality(t *testing.T) {
	// Fully developed laminar channel flow has position-independent h, so
	// every block gets the same coefficient (contrast with Fig. 11).
	m := microModel(t, floorplan.EV6())
	hs := m.BlockH()
	if hs == nil {
		t.Fatal("microchannel should expose per-block h")
	}
	for i := 1; i < len(hs); i++ {
		if math.Abs(hs[i]-hs[0]) > 1e-9 {
			t.Fatalf("h should be uniform: %g vs %g", hs[i], hs[0])
		}
	}
}

func TestMicrochannelEnergyConservation(t *testing.T) {
	m := microModel(t, floorplan.EV6())
	p, err := m.PowerVector(map[string]float64{"IntReg": 2, "Dcache": 3})
	if err != nil {
		t.Fatal(err)
	}
	res := m.SteadyState(p)
	var out float64
	for _, q := range m.solver.HeatFlowToAmbient(res.Temps) {
		out += q
	}
	if math.Abs(out-5) > 1e-8 {
		t.Fatalf("energy not conserved: %g W out of 5 W", out)
	}
}

func TestMicrochannelValidation(t *testing.T) {
	if _, err := New(Config{
		Floorplan: floorplan.EV6(),
		Package:   Microchannel,
		Micro:     MicrochannelConfig{ChannelWidth: -1, ChannelDepth: 1e-4, WallWidth: 1e-4},
	}); err == nil {
		t.Fatal("negative channel width should fail")
	}
}

func TestMicrochannelFastTransient(t *testing.T) {
	// Tiny coolant capacitance + very low R ⇒ much faster time constant
	// than either paper configuration.
	fp := floorplan.EV6()
	micro := microModel(t, fp)
	air := airModel(t, fp, 0.3, false)
	if micro.DominantTimeConstant() >= air.DominantTimeConstant()/100 {
		t.Fatalf("microchannel τ %g should be ≪ air τ %g",
			micro.DominantTimeConstant(), air.DominantTimeConstant())
	}
}

func TestPackageKindString(t *testing.T) {
	if Microchannel.String() != "MICROCHANNEL" || AirSink.String() != "AIR-SINK" {
		t.Fatal("PackageKind strings wrong")
	}
	if PackageKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
