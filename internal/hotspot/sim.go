package hotspot

import (
	"fmt"
	"math"

	"repro/internal/materials"
	"repro/internal/pool"
	"repro/internal/rcnet"
)

// PowerVector expands a per-block power map (W, keyed by block name) into a
// full node-power vector. Unknown block names are an error; blocks absent
// from the map dissipate zero.
func (m *Model) PowerVector(perBlock map[string]float64) ([]float64, error) {
	p := make([]float64, m.net.N())
	fp := m.cfg.Floorplan
	for name, w := range perBlock {
		bi := fp.Index(name)
		if bi < 0 {
			return nil, fmt.Errorf("hotspot: power for unknown block %q", name)
		}
		if w < 0 {
			return nil, fmt.Errorf("hotspot: negative power %g for block %q", w, name)
		}
		p[m.blockNode[bi]] = w
	}
	return p, nil
}

// BlockPowerVector expands per-block powers given in floorplan order.
func (m *Model) BlockPowerVector(perBlock []float64) ([]float64, error) {
	if len(perBlock) != m.cfg.Floorplan.N() {
		return nil, fmt.Errorf("hotspot: got %d block powers, floorplan has %d", len(perBlock), m.cfg.Floorplan.N())
	}
	p := make([]float64, m.net.N())
	for bi, w := range perBlock {
		if w < 0 {
			return nil, fmt.Errorf("hotspot: negative power %g for block %d", w, bi)
		}
		p[m.blockNode[bi]] = w
	}
	return p, nil
}

// Result holds node temperatures (Kelvin) for one model state.
type Result struct {
	model *Model
	Temps []float64 // all node temperatures, K
}

// NewResult wraps a raw temperature vector.
func (m *Model) NewResult(temps []float64) *Result {
	return &Result{model: m, Temps: temps}
}

// BlockK returns the named block's silicon temperature in Kelvin.
func (r *Result) BlockK(name string) float64 {
	bi := r.model.cfg.Floorplan.Index(name)
	if bi < 0 {
		panic(fmt.Sprintf("hotspot: unknown block %q", name))
	}
	return r.Temps[r.model.blockNode[bi]]
}

// BlockC returns the named block's silicon temperature in Celsius.
func (r *Result) BlockC(name string) float64 { return materials.KToC(r.BlockK(name)) }

// BlocksC returns all block temperatures in floorplan order, Celsius.
func (r *Result) BlocksC() []float64 {
	out := make([]float64, len(r.model.blockNode))
	for i, n := range r.model.blockNode {
		out[i] = materials.KToC(r.Temps[n])
	}
	return out
}

// BlocksK returns all block temperatures in floorplan order, Kelvin.
func (r *Result) BlocksK() []float64 {
	out := make([]float64, len(r.model.blockNode))
	for i, n := range r.model.blockNode {
		out[i] = r.Temps[n]
	}
	return out
}

// Hottest returns the name and Celsius temperature of the hottest block.
func (r *Result) Hottest() (string, float64) {
	temps := r.BlocksC()
	bi, bv := 0, temps[0]
	for i, v := range temps {
		if v > bv {
			bi, bv = i, v
		}
	}
	return r.model.cfg.Floorplan.Blocks[bi].Name, bv
}

// Coolest returns the name and Celsius temperature of the coolest block.
func (r *Result) Coolest() (string, float64) {
	temps := r.BlocksC()
	bi, bv := 0, temps[0]
	for i, v := range temps {
		if v < bv {
			bi, bv = i, v
		}
	}
	return r.model.cfg.Floorplan.Blocks[bi].Name, bv
}

// Spread returns the across-die temperature difference max−min (K or °C,
// they are the same for a difference).
func (r *Result) Spread() float64 {
	_, hi := r.Hottest()
	_, lo := r.Coolest()
	return hi - lo
}

// AverageC returns the area-weighted average die temperature in Celsius
// (the paper compares cross-die averages between the two packages).
func (r *Result) AverageC() float64 {
	fp := r.model.cfg.Floorplan
	var sum, area float64
	for i, b := range fp.Blocks {
		sum += materials.KToC(r.Temps[r.model.blockNode[i]]) * b.Area()
		area += b.Area()
	}
	return sum / area
}

// Grid rasterizes the block temperatures onto an nx×ny Celsius grid
// (row-major, row 0 at the die bottom). Used by the map renderers and the
// IR camera model.
func (r *Result) Grid(nx, ny int) []float64 {
	cells := r.model.cfg.Floorplan.Rasterize(nx, ny)
	out := make([]float64, len(cells))
	blocks := r.BlocksC()
	for i, bi := range cells {
		if bi < 0 {
			out[i] = materials.KToC(r.model.net.Ambient())
		} else {
			out[i] = blocks[bi]
		}
	}
	return out
}

// BlocksCInto writes the block temperatures (°C, floorplan order) of a raw
// node-temperature vector into dst (length = block count). It is the
// allocation-free form of NewResult(temps).BlocksC() for per-step loops.
func (m *Model) BlocksCInto(temps, dst []float64) {
	for bi, node := range m.blockNode {
		dst[bi] = materials.KToC(temps[node])
	}
}

// SteadyState solves the equilibrium temperatures for the node-power vector
// (from PowerVector/BlockPowerVector).
func (m *Model) SteadyState(power []float64) *Result {
	return m.NewResult(m.solver.SteadyState(power))
}

// AmbientState returns an all-ambient temperature vector (cold start).
func (m *Model) AmbientState() []float64 { return m.solver.AmbientVector() }

// Transient advances the temperature state in place by duration seconds
// under constant power, using backward Euler with the given step. Backward
// Euler is the default because OIL-SILICON networks are stiff (the tiny oil
// boundary-layer capacitance sits next to the silicon mass).
func (m *Model) Transient(temps, power []float64, duration, dt float64) error {
	return m.solver.TransientBE(temps, power, duration, dt)
}

// TransientAdaptive advances the state with the HotSpot-style adaptive RK4
// integrator (accuracy reference; slower on stiff oil networks).
func (m *Model) TransientAdaptive(temps, power []float64, duration float64, absTol float64) error {
	_, err := m.solver.Transient(temps, power, duration, rcnet.TransientOptions{AbsTol: absTol})
	return err
}

// TracePoint is one sampled instant of a trace-driven simulation.
type TracePoint struct {
	Time   float64
	BlockC []float64 // block temperatures in floorplan order, °C
}

// RunTrace drives the model with a power schedule: schedule fills the
// per-block power slice (floorplan order, W) for the interval starting at
// time t. The state is sampled every sampleEvery seconds.
//
// RunTrace keeps all mutable solver state per call, so it is safe to run
// several traces concurrently on one Model (each with its own temps and
// schedule); RunTraceBatch and RunSweep do exactly that.
func (m *Model) RunTrace(temps []float64, schedule func(t float64, blockPower []float64), duration, sampleEvery float64) ([]TracePoint, error) {
	samples, err := m.solver.TransientTrace(temps, m.nodeSchedule(schedule), duration, sampleEvery)
	if err != nil {
		return nil, err
	}
	return m.tracePoints(samples), nil
}

// nodeSchedule adapts a per-block schedule to the solver's per-node power
// contract. Each returned closure owns its block-power buffer, so distinct
// jobs never share scratch.
func (m *Model) nodeSchedule(schedule func(t float64, blockPower []float64)) func(t float64, nodePower []float64) {
	blockPower := make([]float64, m.cfg.Floorplan.N())
	return func(t float64, nodePower []float64) {
		schedule(t, blockPower)
		for i := range nodePower {
			nodePower[i] = 0
		}
		for bi, w := range blockPower {
			nodePower[m.blockNode[bi]] = w
		}
	}
}

// tracePoints converts solver samples to block-temperature points. All
// BlockC vectors share one flat backing array: a replay converts thousands
// of points, and two allocations beat two-per-point.
func (m *Model) tracePoints(samples []rcnet.Sample) []TracePoint {
	nb := len(m.blockNode)
	flat := make([]float64, len(samples)*nb)
	out := make([]TracePoint, len(samples))
	for i, s := range samples {
		bc := flat[i*nb : (i+1)*nb : (i+1)*nb]
		m.BlocksCInto(s.Temp, bc)
		out[i] = TracePoint{Time: s.Time, BlockC: bc}
	}
	return out
}

// TraceJob describes one independent trace replay: an initial temperature
// state (advanced in place), a per-block power schedule, and the replay
// window.
type TraceJob struct {
	Temps       []float64
	Schedule    func(t float64, blockPower []float64)
	Duration    float64
	SampleEvery float64
}

// RunTraceBatch replays N independent power schedules against this model,
// fanned across a goroutine worker pool (workers ≤ 0 = GOMAXPROCS). The
// compiled conductance operator is shared read-only; every job gets its own
// stepping session and scratch. Results are indexed like jobs.
func (m *Model) RunTraceBatch(jobs []TraceJob, workers int) ([][]TracePoint, error) {
	rjobs := make([]rcnet.TraceJob, len(jobs))
	for i, j := range jobs {
		rjobs[i] = rcnet.TraceJob{
			Temp:        j.Temps,
			Schedule:    m.nodeSchedule(j.Schedule),
			Duration:    j.Duration,
			SampleEvery: j.SampleEvery,
		}
	}
	samples, err := m.solver.TransientBatch(rjobs, workers)
	out := make([][]TracePoint, len(jobs))
	for i, s := range samples {
		if s != nil {
			out[i] = m.tracePoints(s)
		}
	}
	return out, err
}

// SweepJob pairs a model with one trace replay, for sweeps that span several
// model configurations (packages, flow directions, ablations).
type SweepJob struct {
	Model *Model
	TraceJob
}

// RunSweep replays scenario jobs across a worker pool, where each job may
// target a different Model. Jobs are split round-robin into per-worker
// chunks (workers ≤ 0 uses GOMAXPROCS); each worker groups its chunk by
// (model, replay window) and advances every group in lockstep, so
// same-model same-window scenarios solve up to rcnet.MaxBatchWidth
// right-hand sides per factor traversal. Per-job results are bit-identical
// at any worker count (batching never changes per-column arithmetic).
// Results are indexed like jobs; the first error (by job order) is returned
// after all jobs finish.
//
// Jobs are validated before any stepping happens: a job built from an empty
// or truncated power trace (non-positive duration or sample interval, nil
// schedule, wrong state length) fails with a descriptive error instead of
// panicking inside a worker, and a schedule that panics mid-replay fails
// only its own job.
func RunSweep(jobs []SweepJob, workers int) ([][]TracePoint, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	results := make([][]TracePoint, len(jobs))
	errs := make([]error, len(jobs))
	valid := make([]int, 0, len(jobs))
	for j, job := range jobs {
		if errs[j] = validateSweepJob(job); errs[j] == nil {
			valid = append(valid, j)
		}
	}
	pool.RunChunked(valid, workers, func(chunk []int) {
		sweepChunk(jobs, chunk, results, errs)
	})
	for j, err := range errs {
		if err != nil {
			return results, fmt.Errorf("hotspot: sweep job %d: %w", j, err)
		}
	}
	return results, nil
}

// sweepChunk groups one worker's jobs by (model, window) — first-seen
// order, jobs in index order — and locksteps each group through the model's
// solver.
func sweepChunk(jobs []SweepJob, idx []int, results [][]TracePoint, errs []error) {
	type key struct {
		m                     *Model
		duration, sampleEvery float64
	}
	var order []key
	groups := make(map[key][]int)
	for _, j := range idx {
		k := key{jobs[j].Model, jobs[j].Duration, jobs[j].SampleEvery}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], j)
	}
	for _, k := range order {
		g := groups[k]
		rjobs := make([]rcnet.TraceJob, len(g))
		for i, j := range g {
			rjobs[i] = rcnet.TraceJob{
				Temp:        jobs[j].Temps,
				Schedule:    k.m.nodeSchedule(jobs[j].Schedule),
				Duration:    jobs[j].Duration,
				SampleEvery: jobs[j].SampleEvery,
			}
		}
		samples, serrs := k.m.solver.ReplayLockstep(rjobs)
		for i, j := range g {
			if serrs[i] != nil {
				errs[j] = serrs[i]
				continue
			}
			results[j] = k.m.tracePoints(samples[i])
		}
	}
}

// validateSweepJob checks a sweep job's model, replay window, schedule and
// state vector before any stepping happens.
func validateSweepJob(job SweepJob) error {
	if job.Model == nil {
		return fmt.Errorf("nil model")
	}
	if job.Schedule == nil {
		return fmt.Errorf("nil power schedule")
	}
	if !(job.Duration > 0) {
		return fmt.Errorf("empty trace: non-positive duration %g", job.Duration)
	}
	if !(job.SampleEvery > 0) {
		return fmt.Errorf("non-positive sample interval %g", job.SampleEvery)
	}
	if n := job.Model.net.N(); len(job.Temps) != n {
		return fmt.Errorf("temperature vector length %d, want %d", len(job.Temps), n)
	}
	return nil
}

// DominantTimeConstant returns the network's slowest thermal time constant
// in seconds (the long-term warmup constant of §4.1.1).
func (m *Model) DominantTimeConstant() float64 { return m.solver.DominantTimeConstant() }

// SolverBackend names the linear-solver backend the model compiled onto
// ("dense", "cholesky" or "sparse").
func (m *Model) SolverBackend() string { return m.solver.Backend() }

// SolverStats snapshots the model's per-path solver counters
// (factorizations, factor reuses, direct vs CG steps, cumulative step-solve
// time) aggregated over every session of the model.
func (m *Model) SolverStats() rcnet.SolverStats { return m.solver.Stats() }

// SecondaryHeatFraction returns the fraction of total dissipated power that
// leaves through the secondary path (PCB side) at the given steady state.
// Returns 0 when the secondary path is disabled.
func (m *Model) SecondaryHeatFraction(power []float64, r *Result) float64 {
	flows := m.solver.HeatFlowToAmbient(r.Temps)
	var total, secondary float64
	for i, q := range flows {
		total += q
		name := m.net.Name(i)
		if name == "pcb" || name == "oil:pcb" {
			secondary += q
		}
	}
	if total == 0 {
		return 0
	}
	return secondary / total
}

// NodeTempK returns the temperature of an arbitrary named node (e.g. "sink",
// "pcb", "oil:IntReg") from a result, or NaN if absent.
func (r *Result) NodeTempK(name string) float64 {
	i := r.model.net.Index(name)
	if i < 0 {
		return math.NaN()
	}
	return r.Temps[i]
}
