package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

// A StreamSession on the EV6 reduced model must track the full model's
// fixed-dt transient within the reduced drift gate, stay on the reduced
// path, and serve block read-outs.
func TestStreamSessionTracksFullTransient(t *testing.T) {
	cfg := Config{
		Floorplan: floorplan.EV6(),
		Package:   OilSilicon,
		AmbientK:  318.15,
		Secondary: SecondaryPathConfig{Enabled: true},
	}
	full, err := New(cfg)
	if err != nil {
		t.Fatalf("full model: %v", err)
	}
	rcfg := cfg
	rcfg.Reduced.Enabled = true
	red, err := New(rcfg)
	if err != nil {
		t.Fatalf("reduced model: %v", err)
	}

	nb := cfg.Floorplan.N()
	base := make([]float64, nb)
	for i := range base {
		base[i] = 0.4 + 0.05*float64(i%5)
	}
	p0, err := full.BlockPowerVector(base)
	if err != nil {
		t.Fatal(err)
	}
	warm := full.SteadyState(p0).Temps

	// Step under 1.3× power from the shared warm start.
	hot := make([]float64, nb)
	for i, p := range base {
		hot[i] = 1.3 * p
	}
	pHot, err := full.BlockPowerVector(hot)
	if err != nil {
		t.Fatal(err)
	}
	const dt, steps = 1e-3, 200
	ref := append([]float64(nil), warm...)
	if err := full.Transient(ref, pHot, dt*steps, dt); err != nil {
		t.Fatalf("full transient: %v", err)
	}

	ss, err := red.NewStreamSession(dt)
	if err != nil {
		t.Fatalf("NewStreamSession: %v", err)
	}
	if ss.Order() <= 0 {
		t.Fatalf("Order() = %d", ss.Order())
	}
	if err := ss.Start(warm); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := ss.SetBlockPower(hot); err != nil {
		t.Fatalf("SetBlockPower: %v", err)
	}
	for i := 0; i < steps; i++ {
		if err := ss.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if !ss.Reduced() {
		t.Fatal("stream session tripped onto the full backend on the EV6 basis")
	}
	got := ss.Temps(nil)
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > reducedDriftGateK {
			t.Fatalf("node %d: stream %g vs full %g (Δ=%g K)", i, got[i], ref[i], d)
		}
	}
	blocks := ss.BlockTempsC(nil)
	if len(blocks) != nb {
		t.Fatalf("BlockTempsC length %d, want %d", len(blocks), nb)
	}
	for i, c := range blocks {
		if c < 40 || c > 200 {
			t.Fatalf("block %d temperature %g °C outside any plausible range", i, c)
		}
	}
	if st := red.SolverStats(); st.ReducedFallbacks != 0 || st.ReducedSteps == 0 {
		t.Fatalf("stats: fallbacks=%d reducedSteps=%d", st.ReducedFallbacks, st.ReducedSteps)
	}
}

// NewStreamSession requires a reduced model; SetBlockPower validates its
// length.
func TestStreamSessionErrors(t *testing.T) {
	cfg := Config{Floorplan: floorplan.EV6(), Package: OilSilicon, AmbientK: 318.15}
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.NewStreamSession(1e-3); err == nil {
		t.Fatal("NewStreamSession on a full model must error")
	}
	cfg.Reduced.Enabled = true
	red, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := red.NewStreamSession(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.SetBlockPower(make([]float64, 3)); err == nil {
		t.Fatal("SetBlockPower with a short vector must error")
	}
	if err := ss.Start(make([]float64, 3)); err == nil {
		t.Fatal("Start with a short vector must error")
	}
}
