package hotspot

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/trace"
)

// Parity tests for the lockstep batch paths at the hotspot layer: RunSweep
// and RunReplayBatch must reproduce their sequential counterparts bit for
// bit at any worker count, and the K-wide BatchSession must match Session.

func lockstepModels(t *testing.T) (*Model, *Model) {
	t.Helper()
	fp := floorplan.EV6()
	oil, err := New(Config{
		Floorplan: fp,
		Package:   OilSilicon,
		Oil:       OilConfig{Direction: LeftToRight, TargetRconv: 0.3},
		Secondary: SecondaryPathConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	air, err := New(Config{Floorplan: fp, Package: AirSink, Air: AirSinkConfig{RConvec: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	return oil, air
}

func pulse(t *testing.T, block string) *trace.PowerTrace {
	t.Helper()
	tr, err := trace.PulseTrain(floorplan.EV6().Names(), block, 4, 2e-3, 3e-3, 0.5e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRunSweepLockstepParity: sweeps mixing two models and several
// same-model scenarios must match per-job sequential RunTrace bitwise at
// every worker count (same-model jobs lockstep; chunking varies with
// workers).
func TestRunSweepLockstepParity(t *testing.T) {
	oil, air := lockstepModels(t)
	traces := []*trace.PowerTrace{pulse(t, "IntReg"), pulse(t, "FPMap"), pulse(t, "Dcache")}
	mkJobs := func() []SweepJob {
		var jobs []SweepJob
		for _, m := range []*Model{oil, air} {
			for _, tr := range traces {
				tr := tr
				jobs = append(jobs, SweepJob{Model: m, TraceJob: TraceJob{
					Temps:       m.AmbientState(),
					Schedule:    func(tm float64, p []float64) { copy(p, tr.At(tm)) },
					Duration:    tr.Duration(),
					SampleEvery: tr.Interval,
				}})
			}
		}
		return jobs
	}
	ref := make([][]TracePoint, 0)
	for _, job := range mkJobs() {
		pts, err := job.Model.RunTrace(job.Temps, job.Schedule, job.Duration, job.SampleEvery)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, pts)
	}
	for _, workers := range []int{1, 2, 5} {
		got, err := RunSweep(mkJobs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if len(got[j]) != len(ref[j]) {
				t.Fatalf("workers=%d job %d: %d points vs %d", workers, j, len(got[j]), len(ref[j]))
			}
			for i := range ref[j] {
				for b := range ref[j][i].BlockC {
					if got[j][i].BlockC[b] != ref[j][i].BlockC[b] {
						t.Fatalf("workers=%d job %d point %d block %d: %v vs %v",
							workers, j, i, b, got[j][i].BlockC[b], ref[j][i].BlockC[b])
					}
				}
			}
		}
	}
}

// TestRunReplayBatchLockstepParity: streamed lockstep replay — including
// traces of different lengths in one group, which drop out at EOF — must
// match sequential Session.ReplayRows bitwise.
func TestRunReplayBatchLockstepParity(t *testing.T) {
	oil, air := lockstepModels(t)
	long := pulse(t, "IntReg")
	short := pulse(t, "FPMap")
	shortRows := short.Rows[:len(short.Rows)/2]
	shortTr := &trace.PowerTrace{Names: short.Names, Interval: short.Interval}
	for _, r := range shortRows {
		if err := shortTr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	models := []*Model{oil, oil, air, oil}
	srcs := []*trace.PowerTrace{long, shortTr, long, long}
	ref := make([][]TracePoint, len(models))
	for j := range models {
		pts, err := models[j].NewSession().ReplayRows(models[j].AmbientState(), srcs[j].Reader())
		if err != nil {
			t.Fatal(err)
		}
		ref[j] = pts
	}
	for _, workers := range []int{1, 2, 4} {
		jobs := make([]ReplayJob, len(models))
		for j := range models {
			jobs[j] = ReplayJob{Model: models[j], Rows: srcs[j].Reader()}
		}
		got, err := RunReplayBatch(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if len(got[j]) != len(ref[j]) {
				t.Fatalf("workers=%d job %d: %d points vs %d", workers, j, len(got[j]), len(ref[j]))
			}
			for i := range ref[j] {
				for b := range ref[j][i].BlockC {
					if got[j][i].BlockC[b] != ref[j][i].BlockC[b] {
						t.Fatalf("workers=%d job %d point %d block %d: %v vs %v",
							workers, j, i, b, got[j][i].BlockC[b], ref[j][i].BlockC[b])
					}
				}
			}
		}
	}
}

// TestBatchSessionStepBlockPowerParity: the K-wide stepping session must
// match per-cell Sessions bitwise, and an invalid slot must fail alone
// without advancing its state.
func TestBatchSessionStepBlockPowerParity(t *testing.T) {
	oil, _ := lockstepModels(t)
	nb := oil.Config().Floorplan.N()
	const kk = 3
	seq := make([][]float64, kk)
	bat := make([][]float64, kk)
	pws := make([][]float64, kk)
	for k := 0; k < kk; k++ {
		seq[k] = oil.AmbientState()
		bat[k] = oil.AmbientState()
		pws[k] = make([]float64, nb)
		for b := range pws[k] {
			pws[k][b] = float64(k+1) * 0.3
		}
	}
	bs := oil.NewBatchSession(kk)
	errs := make([]error, kk)
	for step := 0; step < 5; step++ {
		for k := 0; k < kk; k++ {
			se := oil.NewSession()
			if err := se.StepBlockPower(seq[k], pws[k], 1e-3); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.StepBlockPower(bat, pws, 1e-3, errs); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < kk; k++ {
			if errs[k] != nil {
				t.Fatalf("slot %d: %v", k, errs[k])
			}
			for i := range bat[k] {
				if bat[k][i] != seq[k][i] {
					t.Fatalf("step %d slot %d node %d: %v vs %v", step, k, i, bat[k][i], seq[k][i])
				}
			}
		}
	}

	// Invalid power in one slot: that slot errors and freezes, others step.
	before := append([]float64(nil), bat[1]...)
	pws[1][0] = -1
	if err := bs.StepBlockPower(bat, pws, 1e-3, errs); err != nil {
		t.Fatal(err)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "invalid power") {
		t.Fatalf("invalid slot error: %v", errs[1])
	}
	for i := range before {
		if bat[1][i] != before[i] {
			t.Fatal("failed slot advanced")
		}
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy slots failed: %v %v", errs[0], errs[2])
	}
}
