package hotspot

import (
	"testing"

	"repro/internal/floorplan"
)

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	base := Config{
		Floorplan: floorplan.EV6(),
		Package:   OilSilicon,
		AmbientK:  318.15,
		Oil:       OilConfig{Direction: LeftToRight, TargetRconv: 1.0},
	}
	fpA := base.Fingerprint()
	if fpA != base.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// Defaulting must not change the identity: an explicitly-defaulted
	// config hashes the same as its zero-field original.
	if got := base.Defaulted().Fingerprint(); got != fpA {
		t.Fatalf("defaulted config fingerprint differs: %s vs %s", got, fpA)
	}

	variants := []Config{
		{Floorplan: floorplan.Athlon(), Package: OilSilicon, AmbientK: 318.15, Oil: OilConfig{Direction: LeftToRight, TargetRconv: 1.0}},
		{Floorplan: floorplan.EV6(), Package: AirSink, AmbientK: 318.15},
		{Floorplan: floorplan.EV6(), Package: OilSilicon, AmbientK: 318.15, Oil: OilConfig{Direction: TopToBottom, TargetRconv: 1.0}},
		{Floorplan: floorplan.EV6(), Package: OilSilicon, AmbientK: 318.15, Oil: OilConfig{Direction: LeftToRight, TargetRconv: 0.3}},
		{Floorplan: floorplan.EV6(), Package: OilSilicon, AmbientK: 300, Oil: OilConfig{Direction: LeftToRight, TargetRconv: 1.0}},
		{Floorplan: floorplan.EV6(), Package: OilSilicon, AmbientK: 318.15, Oil: OilConfig{Direction: LeftToRight, TargetRconv: 1.0}, Secondary: SecondaryPathConfig{Enabled: true}},
	}
	seen := map[string]int{fpA: -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[fp] = i
	}
}

func TestModelFingerprintMatchesConfig(t *testing.T) {
	cfg := Config{Floorplan: floorplan.EV6(), Package: AirSink, AmbientK: 318.15}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("model fingerprint differs from its config fingerprint")
	}
}
