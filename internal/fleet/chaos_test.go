package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/tstore"
)

// Chaos phases: workers tag every request with the phase it completed in.
const (
	phaseSteady  = 0 // all replicas up
	phaseKilled  = 1 // victim dead
	phaseRevived = 2 // victim back, fleet settled
)

// chaosResult is one logical client request as the chaos log records it.
type chaosResult struct {
	op      string
	status  int
	phase   int64
	err     string
	persist string // run name when this was a persisting transient
	acked   int64  // persisted_rows from the response
	pending bool   // persist_pending from the response
}

// TestChaosKillReplicaMidSweep is the headline robustness suite: four real
// service replicas behind the router, two tenants sweeping concurrently,
// one replica killed mid-load and revived. Asserts:
//
//   - outside the kill window every request succeeds; inside it the error
//     budget is bounded (retry/failover absorb the death);
//   - the dead replica's key share is reassigned deterministically to each
//     key's next ring preference, and returns on revival;
//   - the victim's breaker trips open and recovers to closed after revival
//     (via the prober's half-open probe);
//   - /v1/stats fleet counters exactly reconcile with the request log;
//   - no acknowledged-then-lost telemetry: every persisted row the fleet
//     acked is durable in some replica's store.
func TestChaosKillReplicaMidSweep(t *testing.T) {
	const nReplicas = 4
	dirs := make([]string, nReplicas)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var storeMu sync.Mutex
	stores := make([]*tstore.Store, nReplicas)
	factory := func(i int) http.Handler {
		// A revive models a process restart on the same data directory: the
		// previous store closes (flushing what it can) before the fresh one
		// recovers from disk. Factory calls all happen on the test goroutine.
		storeMu.Lock()
		defer storeMu.Unlock()
		if stores[i] != nil {
			_ = stores[i].Close()
		}
		st, err := tstore.Open(dirs[i], tstore.Options{})
		if err != nil {
			t.Fatalf("open store %d: %v", i, err)
		}
		stores[i] = st
		return service.New(service.Config{MaxConcurrent: 3, QueueDepth: 32, Store: st}).Handler()
	}

	h, err := NewHarness(nReplicas, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rt, err := New(Config{
		Replicas:      h.Addrs(),
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 3, OpenTimeout: 150 * time.Millisecond, HalfOpenProbes: 2},
		Retry:         RetryPolicy{MaxAttempts: 6, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, MaxRetryAfter: 50 * time.Millisecond},
		HedgeDelay:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	specs := []service.ModelSpec{
		steadySpec("grid:3x3"), steadySpec("grid:4x4"), steadySpec("grid:5x5"),
		steadySpec("grid:3x4"), steadySpec("grid:4x3"), steadySpec("grid:5x4"),
	}
	transientSpec := steadySpec("grid:3x3")

	// The victim is the ring owner of the first spec's fingerprint, so we
	// know at least its keys change hands.
	fp0, err := specs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	victim := rt.Ring().Owner(fp0)
	victimIdx := -1
	for i, addr := range h.Addrs() {
		if addr == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("victim %s not in harness addrs %v", victim, h.Addrs())
	}

	// --- concurrent two-tenant sweep load ---

	var phase atomic.Int64
	var runSeq atomic.Int64
	var reqTotal atomic.Int64
	stopc := make(chan struct{})
	var mu sync.Mutex
	var log []chaosResult
	record := func(r chaosResult) {
		mu.Lock()
		log = append(log, r)
		mu.Unlock()
	}

	httpc := &http.Client{Timeout: 15 * time.Second}
	doOp := func(tenant string, seq int) {
		var (
			op   string
			path string
			body []byte
			run  string
		)
		switch seq % 3 {
		case 0, 1:
			op, path = "steady", "/v1/steady"
			body = steadyBody(t, specs[seq%len(specs)])
		case 2:
			op, path = "transient+persist", "/v1/transient"
			run = fmt.Sprintf("chaos/%s/run-%d", tenant, runSeq.Add(1))
			body, _ = json.Marshal(service.TransientRequest{
				Model: transientSpec,
				Trace: &service.TraceSpec{
					Names:    []string{"c0_0", "c1_1", "c2_2"},
					Interval: 0.01,
					Rows:     [][]float64{{2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 5, 5}},
				},
				Persist: run,
			})
		}
		req, err := http.NewRequest(http.MethodPost, front.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		reqTotal.Add(1)
		resp, err := httpc.Do(req)
		res := chaosResult{op: op, phase: phase.Load(), persist: run}
		if err != nil {
			res.err = err.Error()
			record(res)
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		res.status = resp.StatusCode
		if run != "" && resp.StatusCode == http.StatusOK {
			var tr service.TransientResponse
			if err := json.Unmarshal(data, &tr); err == nil {
				res.acked = tr.PersistedRows
				res.pending = tr.PersistPending
			}
		}
		if resp.StatusCode != http.StatusOK {
			res.err = string(data)
		}
		record(res)
	}

	var wg sync.WaitGroup
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(tenant string, w int) {
				defer wg.Done()
				for seq := w; ; seq++ {
					select {
					case <-stopc:
						return
					default:
					}
					doOp(tenant, seq)
				}
			}(tenant, w)
		}
	}

	// --- the kill window ---

	time.Sleep(250 * time.Millisecond) // warm phase: caches fill, conns reuse
	phase.Store(phaseKilled)
	h.Kill(victimIdx)
	// The victim must leave rotation: breaker open, availability off.
	waitCond(t, 3*time.Second, "victim ejected", func() bool {
		rs := replicaStat(t, rt.Stats(), victim)
		return rs.Breaker == "open" && !rs.Available
	})
	time.Sleep(400 * time.Millisecond) // sustained load against the 3-replica fleet

	h.Revive(victimIdx)
	// The prober's half-open probe must bring it back without sacrificing a
	// client request.
	waitCond(t, 3*time.Second, "victim rejoined", func() bool {
		rs := replicaStat(t, rt.Stats(), victim)
		return rs.Breaker == "closed" && rs.Available
	})
	phase.Store(phaseRevived)
	time.Sleep(300 * time.Millisecond) // settled load on the full fleet
	close(stopc)
	wg.Wait()

	// Settle check: with the fleet whole again, a burst of sequential
	// requests must all succeed.
	for i := 0; i < 20; i++ {
		resp, data := postJSON(t, httpc, front.URL+"/v1/steady", steadyBody(t, specs[i%len(specs)]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("settled request %d: %d %s", i, resp.StatusCode, data)
		}
		reqTotal.Add(1)
	}

	// --- zero failures outside the kill window, bounded budget inside ---

	var perPhase [3]int
	var failsInWindow int
	for _, r := range log {
		perPhase[r.phase]++
		ok := r.err == "" && r.status == http.StatusOK
		switch r.phase {
		case phaseKilled:
			if !ok {
				failsInWindow++
			}
		default:
			if !ok {
				t.Errorf("phase %d %s request failed: status=%d err=%s", r.phase, r.op, r.status, r.err)
			}
		}
	}
	t.Logf("chaos load: %d steady-phase, %d kill-window, %d revived-phase requests; %d kill-window failures",
		perPhase[0], perPhase[1], perPhase[2], failsInWindow)
	for p, n := range perPhase {
		if n == 0 {
			t.Errorf("phase %d saw no requests — the schedule did not overlap the load", p)
		}
	}
	if budget := perPhase[phaseKilled] / 4; failsInWindow > budget {
		t.Errorf("kill-window failures %d exceed the error budget %d (of %d)", failsInWindow, budget, perPhase[phaseKilled])
	}

	// --- deterministic ring reassignment ---

	ring := rt.Ring()
	all := func(string) bool { return true }
	without := func(a string) bool { return a != victim }
	for _, spec := range specs {
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		owners := ring.Owners(fp, 0)
		moved, _ := ring.OwnerBounded(fp, 1.25, without, nil)
		if owners[0] == victim {
			if moved != owners[1] {
				t.Errorf("key %s: victim's share moved to %s, want next preference %s", fp[:12], moved, owners[1])
			}
		} else if moved != owners[0] {
			t.Errorf("key %s moved to %s though its owner %s stayed up", fp[:12], moved, owners[0])
		}
		back, _ := ring.OwnerBounded(fp, 1.25, all, nil)
		if back != owners[0] {
			t.Errorf("key %s did not return to %s after revival: %s", fp[:12], owners[0], back)
		}
	}

	// --- breaker lifecycle and stats reconciliation ---

	s := rt.Stats()
	vs := replicaStat(t, s, victim)
	if vs.BreakerTrips < 1 {
		t.Errorf("victim breaker never tripped: %+v", vs)
	}
	if vs.Transitions < 2 {
		t.Errorf("victim availability flipped %d times, want >= 2 (out and back)", vs.Transitions)
	}
	if vs.Breaker != "closed" || !vs.Available {
		t.Errorf("victim did not recover: %+v", vs)
	}
	if s.RingMoves < 2 {
		t.Errorf("ring_moves = %d, want >= 2", s.RingMoves)
	}

	var attempts int64
	for _, rs := range s.Replicas {
		attempts += rs.Attempts
		if rs.InFlight != 0 {
			t.Errorf("replica %s still reports %d in-flight after drain", rs.Addr, rs.InFlight)
		}
	}
	if attempts != s.Routed+s.Retries+s.Failovers+s.HedgesLaunched {
		t.Errorf("attempt identity broken: sum(replica attempts)=%d, routed=%d retries=%d failovers=%d hedges=%d",
			attempts, s.Routed, s.Retries, s.Failovers, s.HedgesLaunched)
	}
	if s.Proxied != s.Routed+s.RouteErrors+s.NoReplica {
		t.Errorf("proxied identity broken: %+v", s)
	}
	if s.Proxied != reqTotal.Load() {
		t.Errorf("router proxied %d requests, client log sent %d", s.Proxied, reqTotal.Load())
	}
	if s.Failovers < 1 {
		t.Errorf("kill produced no failovers: %+v", s)
	}

	// --- no acknowledged-then-lost persisted rows ---

	storeMu.Lock()
	for i, st := range stores {
		if err := st.Flush(); err != nil {
			t.Errorf("flush store %d: %v", i, err)
		}
	}
	// The service persists every floorplan block of the model (grid:3x3 has
	// nine), regardless of which blocks the input trace drove.
	var blocks []string
	for iy := 0; iy < 3; iy++ {
		for ix := 0; ix < 3; ix++ {
			blocks = append(blocks, fmt.Sprintf("c%d_%d", ix, iy))
		}
	}
	countRows := func(series string) int64 {
		var total int64
		for _, st := range stores {
			res, err := st.Query(series, math.MinInt64/2, math.MaxInt64/2, 0)
			if err != nil {
				continue // series absent on this replica
			}
			total += int64(len(res.Rows))
		}
		return total
	}
	ackedRuns := 0
	for _, r := range log {
		if r.persist == "" || r.status != http.StatusOK || r.acked == 0 || r.pending {
			continue
		}
		ackedRuns++
		var durable int64
		for _, b := range blocks {
			durable += countRows(r.persist + "/" + b)
		}
		if durable < r.acked {
			t.Errorf("run %s: fleet acked %d persisted rows but only %d are durable across replicas",
				r.persist, r.acked, durable)
		}
	}
	storeMu.Unlock()
	if ackedRuns == 0 {
		t.Error("no persisting transients were acked — durability assertion never exercised")
	}
	t.Logf("chaos stats: %+v", s)
	t.Logf("durability: %d acked persist runs verified against the store union", ackedRuns)
}
