package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleeper records requested sleeps without actually sleeping.
type fakeSleeper struct {
	slept []time.Duration
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return ctx.Err()
}

func buildGet(url string) func(ctx context.Context) (*http.Request, error) {
	return func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}
}

// TestRetryClientHonorsRetryAfter: retryable statuses sleep the server's
// Retry-After (capped at MaxRetryAfter) when it exceeds the jittered backoff,
// and the eventual success returns with its body intact.
func TestRetryClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	sleeper := &fakeSleeper{}
	var retried []string
	c := &RetryClient{
		Policy: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond,
			MaxBackoff: 10 * time.Millisecond, MaxRetryAfter: time.Second},
		OnRetry:   func(attempt int, sleep time.Duration, cause string) { retried = append(retried, cause) },
		randFloat: func() float64 { return 0 }, // no jitter: sleeps are pure Retry-After
		sleep:     sleeper.sleep,
	}
	resp, err := c.Do(context.Background(), buildGet(srv.URL))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("final response %d %q", resp.StatusCode, body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	// Retry-After asked 3 s; MaxRetryAfter caps the honored wait at 1 s.
	if len(sleeper.slept) != 2 || sleeper.slept[0] != time.Second || sleeper.slept[1] != time.Second {
		t.Fatalf("sleeps = %v, want [1s 1s]", sleeper.slept)
	}
	if len(retried) != 2 || !strings.Contains(retried[0], "status 503") || !strings.Contains(retried[0], "Retry-After 1s") {
		t.Fatalf("OnRetry causes = %v", retried)
	}
}

// TestRetryClientGivesUp: attempts stop at MaxAttempts with a descriptive
// error, and the last retryable response is handed back body-readable.
func TestRetryClientGivesUp(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"shed"}`)
	}))
	defer srv.Close()

	c := &RetryClient{
		Policy:    RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxRetryAfter: 10 * time.Millisecond},
		randFloat: func() float64 { return 0 },
		sleep:     (&fakeSleeper{}).sleep,
	}
	resp, err := c.Do(context.Background(), buildGet(srv.URL))
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("err = %v, want gave-up error", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if resp == nil {
		t.Fatal("want the last response alongside the error")
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "shed") {
		t.Fatalf("last response %d %q", resp.StatusCode, body)
	}
}

// TestRetryClientNonRetryable: a definitive status — even an error one —
// returns immediately without burning attempts.
func TestRetryClientNonRetryable(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := &RetryClient{sleep: func(context.Context, time.Duration) error {
		t.Fatal("must not sleep on a definitive answer")
		return nil
	}}
	resp, err := c.Do(context.Background(), buildGet(srv.URL))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || calls.Load() != 1 {
		t.Fatalf("status %d after %d calls, want 400 after 1", resp.StatusCode, calls.Load())
	}
}

// TestRetryClientTransportError: connection failures are retried and the
// final error names the attempts and last cause; no response is returned.
func TestRetryClientTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens: every dial fails

	c := &RetryClient{
		Policy:    RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
		randFloat: func() float64 { return 0 },
		sleep:     (&fakeSleeper{}).sleep,
	}
	resp, err := c.Do(context.Background(), buildGet(url))
	if err == nil || !strings.Contains(err.Error(), "gave up after 2 attempts") {
		t.Fatalf("err = %v", err)
	}
	if resp != nil {
		t.Fatalf("resp = %v, want nil on pure transport failure", resp)
	}
}

// TestRetryClientContextCancelled: a cancelled context stops the loop during
// the backoff sleep with an error that wraps context.Canceled.
func TestRetryClientContextCancelled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := &RetryClient{
		Policy:    RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
		randFloat: func() float64 { return 0.5 },
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := c.Do(ctx, buildGet(srv.URL))
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context cancellation", err)
	}
}

// TestBackoffSchedule pins the full-jitter schedule: the draw is uniform in
// [0, min(MaxBackoff, Base·2^(k-1))], so rand=1 yields the ceiling and the
// ceiling doubles per attempt until the cap (shift overflow included).
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}.defaulted()
	one := func() float64 { return 1 }
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second},  // capped
		{64, time.Second}, // shift overflow falls back to the cap
	} {
		if got := p.backoff(tc.attempt, one); got != tc.want {
			t.Errorf("backoff(%d, 1.0) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	half := func() float64 { return 0.5 }
	if got := p.backoff(2, half); got != 100*time.Millisecond {
		t.Errorf("backoff(2, 0.5) = %v, want 100ms", got)
	}
}

// TestRetryAfterParsing covers the header convention: whole non-negative
// seconds, anything else ignored.
func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		v    string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"2", 2 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false},
	} {
		got, ok := RetryAfter(mk(tc.v))
		if got != tc.want || ok != tc.ok {
			t.Errorf("RetryAfter(%q) = (%v, %v), want (%v, %v)", tc.v, got, ok, tc.want, tc.ok)
		}
	}
	for status, want := range map[int]bool{
		200: false, 400: false, 404: false, 429: true, 500: false, 502: true, 503: true, 504: true,
	} {
		if got := Retryable(status); got != want {
			t.Errorf("Retryable(%d) = %v, want %v", status, got, want)
		}
	}
}
