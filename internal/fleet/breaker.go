package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position (DESIGN.md §13.2).
type BreakerState int32

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the open timeout elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of concurrent probes are admitted;
	// one success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero fields take the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips
	// closed → open (default 3).
	FailureThreshold int
	// OpenTimeout is how long an open breaker refuses before admitting
	// half-open probes (default 1 s).
	OpenTimeout time.Duration
	// HalfOpenProbes bounds concurrent in-flight probes while half-open
	// (default 1): a recovering replica sees a trickle, not the full load.
	HalfOpenProbes int

	// now is injectable time for the state-transition table tests.
	now func() time.Time
}

func (c BreakerConfig) defaulted() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker guarding one replica.
// Both real request outcomes and health-probe outcomes feed it, so a replica
// with no traffic still trips on failed probes and a tripped replica rejoins
// when a probe (admitted by the half-open state) succeeds.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive, while closed
	openedAt time.Time // while open
	probes   int       // in-flight admitted probes, while half-open
	trips    int64     // closed→open transitions ever
}

// NewBreaker builds a breaker from the (defaulted) config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.defaulted()}
}

// Allow reports whether a call may proceed, performing the open → half-open
// transition once the open timeout has elapsed. In the half-open state it
// admits at most HalfOpenProbes concurrent calls; every admitted call MUST
// be answered with OnSuccess or OnFailure to release its probe slot.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	default: // half-open
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// OnSuccess records a successful call: resets the failure streak while
// closed, and closes the breaker from half-open.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.failures = 0
		b.probes = 0
	}
}

// OnFailure records a failed call: trips closed → open at the consecutive
// threshold, and reopens from half-open immediately (re-arming the timeout).
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// A straggler from before the trip; the breaker is already open.
	}
}

// trip moves to open (caller holds the lock).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.now()
	b.failures = 0
	b.probes = 0
	b.trips++
}

// State returns the current position without performing transitions.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed→open transitions over the breaker's lifetime.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
