package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// Handler returns the router's HTTP surface: the full replica API proxied by
// model affinity, plus the router's own /healthz, /readyz and /v1/stats.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("/", rt.handleProxy)
	return mux
}

// handleHealthz is pure proxy liveness: the router process is up.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the fleet can take work: at least one replica
// in rotation.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if len(rt.AvailableReplicas()) == 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no replicas available"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) failJSON(w http.ResponseWriter, code int, retryAfter bool, err error) {
	if retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// --- route keys ---

// jsonModel is the permissive shape of every solve request body the router
// needs: just enough to recover the model spec for fingerprinting. Unknown
// fields are ignored — full validation is the replica's job.
type jsonModel struct {
	Model     service.ModelSpec `json:"model"`
	Scenarios []struct {
		Model service.ModelSpec `json:"model"`
	} `json:"scenarios"`
}

// routeKey derives the consistent-hash key for a request:
//
//   - solve endpoints (steady/transient/sweep/invert): the resolved model's
//     fingerprint — the same key the replica's compiled-model cache uses, so
//     the request lands where the model is (sweeps key on their first
//     scenario's model).
//   - query endpoints: the series name (persisted runs stay readable from
//     a stable replica).
//   - scenario endpoints, and any body the router cannot interpret: a digest
//     of the request (identical scenario specs reuse the same replica's
//     cached models). The replica still validates everything; the router
//     only needs a stable key.
func (rt *Router) routeKey(r *http.Request, body []byte) string {
	path := r.URL.Path
	switch {
	case path == "/v1/steady", path == "/v1/invert", path == "/v1/sweep":
		var jm jsonModel
		if err := json.Unmarshal(body, &jm); err == nil {
			spec := jm.Model
			if path == "/v1/sweep" && len(jm.Scenarios) > 0 {
				spec = jm.Scenarios[0].Model
			}
			if fp, err := spec.Fingerprint(); err == nil {
				return fp
			}
		}
	case path == "/v1/transient":
		var spec service.ModelSpec
		decoded := true
		if isJSONContent(r) {
			var jm jsonModel
			if err := json.Unmarshal(body, &jm); err != nil {
				decoded = false
			}
			spec = jm.Model
		} else {
			spec = specFromQuery(r)
		}
		if decoded {
			if fp, err := spec.Fingerprint(); err == nil {
				return fp
			}
		}
	case path == "/v1/query" || path == "/v1/query/stream":
		if s := r.URL.Query().Get("series"); s != "" {
			return "series:" + s
		}
	case path == "/v1/query/series":
		// One deterministic home so repeated listings agree while the
		// membership is stable (a fleet-wide listing union is future work;
		// DESIGN.md §13.6).
		return "series-listing"
	}
	return bodyDigest(r.Method, path, body)
}

// specFromQuery mirrors the replica's streamed-transient query parameters
// (service.transientQueryParams): the trace is the body, the model rides the
// URL.
func specFromQuery(r *http.Request) service.ModelSpec {
	q := r.URL.Query()
	spec := service.ModelSpec{
		Floorplan: q.Get("floorplan"),
		FLP:       q.Get("flp"),
		Package:   q.Get("package"),
		Direction: q.Get("direction"),
		Secondary: q.Get("secondary") == "true",
	}
	spec.Rconv, _ = strconv.ParseFloat(q.Get("rconv"), 64)
	spec.AmbientC, _ = strconv.ParseFloat(q.Get("ambient_c"), 64)
	return spec
}

func isJSONContent(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == "application/json"
}

func bodyDigest(method, path string, body []byte) string {
	h := hashKey(method + " " + path)
	bh := hashKey(string(body))
	return "req:" + strconv.FormatUint(h^bh*1099511628211, 16)
}

// hedgeEligible reports whether a request may be raced against a second
// replica: idempotent pure solves and reads only. A transient carrying a
// persist run name writes telemetry rows — hedging it could double-write, so
// it fails over serially instead.
func hedgeEligible(r *http.Request, body []byte) bool {
	switch r.URL.Path {
	case "/v1/steady", "/v1/invert":
		return true
	case "/v1/query", "/v1/query/stream", "/v1/query/series":
		return r.Method == http.MethodGet
	case "/v1/transient":
		if !isJSONContent(r) {
			return r.URL.Query().Get("persist") == ""
		}
		var req struct {
			Persist string `json:"persist"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return false
		}
		return req.Persist == ""
	}
	return false
}

// --- the proxy path ---

// upstreamResult is one settled attempt chain: a definitive response (err ==
// nil, any status the replica chose to answer) or a routing failure.
type upstreamResult struct {
	resp  *http.Response
	err   error
	rep   *replica
	hedge bool
}

var errNoReplica = fmt.Errorf("fleet: no replica available")

// handleProxy buffers the body, derives the route key and drives the
// retry/failover/hedge schedule until a replica answers or the budget runs
// out.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.counters.proxied.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.counters.routeErrors.Add(1)
		rt.failJSON(w, http.StatusBadRequest, false, fmt.Errorf("fleet: read body: %w", err))
		return
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.counters.routeErrors.Add(1)
		rt.failJSON(w, http.StatusRequestEntityTooLarge, false,
			fmt.Errorf("fleet: body exceeds %d bytes (bodies buffer for retry/hedge)", rt.cfg.MaxBodyBytes))
		return
	}
	key := rt.routeKey(r, body)
	res := rt.dispatch(r, key, body)
	if res.err != nil {
		if res.err == errNoReplica {
			rt.counters.noReplica.Add(1)
			rt.failJSON(w, http.StatusServiceUnavailable, true, errNoReplica)
			return
		}
		rt.counters.exhausted.Add(1)
		rt.failJSON(w, http.StatusBadGateway, true, fmt.Errorf("fleet: %w", res.err))
		return
	}
	defer res.resp.Body.Close()
	copyResponse(w, res.resp)
}

// dispatch runs the primary attempt chain and, for idempotent requests with
// deadline headroom, a single hedge against the next ring owner once the
// primary has run alone for HedgeDelay. The first settled chain with a
// definitive response wins; the loser is cancelled and drained.
func (rt *Router) dispatch(r *http.Request, key string, body []byte) upstreamResult {
	ctx := r.Context()
	primary, _ := rt.ring.OwnerBounded(key, rt.cfg.BoundedLoadFactor, rt.available, rt.loadOf)
	if primary == "" {
		return upstreamResult{err: errNoReplica}
	}
	order := rt.failoverOrder(key, primary)

	if rt.cfg.HedgeDelay <= 0 || len(order) < 2 || !hedgeEligible(r, body) {
		return rt.tryOwners(ctx, r, body, order, false)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan upstreamResult, 2)
	running := 1
	go func() { resc <- rt.tryOwners(raceCtx, r, body, order, false) }()

	hedgeTimer := time.NewTimer(rt.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	var lastFail upstreamResult
	for {
		select {
		case res := <-resc:
			running--
			if res.err == nil {
				if res.hedge {
					rt.counters.hedgesWon.Add(1)
				}
				cancel()
				if running > 0 {
					go drainResult(resc)
				}
				return res
			}
			if running == 0 {
				// Both chains (or the only one) failed: surface the primary's
				// error when it is the more descriptive of the two.
				if lastFail.err != nil && !lastFail.hedge {
					return lastFail
				}
				return res
			}
			lastFail = res
		case <-hedgeTimer.C:
			// Fires at most once (never reset). Skip when the deadline no
			// longer leaves the hedge room to win.
			if !deadlineRoom(ctx, rt.cfg.HedgeDelay) {
				continue
			}
			running++
			go func() { resc <- rt.hedgeAttempt(raceCtx, r, body, order) }()
		}
	}
}

// drainResult disposes of a raced chain's late result.
func drainResult(resc chan upstreamResult) {
	res := <-resc
	if res.resp != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(res.resp.Body, 1<<20))
		res.resp.Body.Close()
	}
}

// deadlineRoom reports whether the context has at least margin left (or no
// deadline at all): hedging inside the last margin only doubles load without
// a chance to win.
func deadlineRoom(ctx context.Context, margin time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	d, ok := ctx.Deadline()
	return !ok || time.Until(d) > margin
}

// failoverOrder is the key's full preference order rotated to start at the
// chosen primary.
func (rt *Router) failoverOrder(key, primary string) []string {
	owners := rt.ring.Owners(key, 0)
	for i, o := range owners {
		if o == primary {
			return append(owners[i:], owners[:i]...)
		}
	}
	return owners
}

func (rt *Router) loadOf(name string) int {
	return int(rt.replicas[name].inFlight.Load())
}

// tryOwners drives the serial retry/failover schedule: walk the preference
// order, calling each in-rotation replica; a 429 retries the same replica
// after its Retry-After (it is alive, and moving would abandon its warm
// model cache), transport errors and 502/503 fail over to the next owner.
// The total upstream-call budget is Retry.MaxAttempts; between full sweeps
// of the order it sleeps a jittered backoff so a fleet-wide brownout is not
// hammered.
func (rt *Router) tryOwners(ctx context.Context, r *http.Request, body []byte, order []string, hedge bool) upstreamResult {
	policy := rt.cfg.Retry
	calls := 0
	var prev *replica
	lastCause := ""
	for round := 0; ; round++ {
		progressed := false
		for i := 0; i < len(order); i++ {
			if err := ctx.Err(); err != nil {
				return exhaust(lastCause, err, hedge)
			}
			if calls >= policy.MaxAttempts {
				return exhaust(lastCause, nil, hedge)
			}
			rep := rt.replicas[order[i]]
			// Allow performs open → half-open and meters half-open probes; an
			// admitted call always reaches rt.call, whose breaker feedback
			// releases the probe slot.
			if !rep.breaker.Allow() {
				continue
			}
			calls++
			rt.accountCall(prev, rep, hedge)
			res := rt.call(ctx, rep, r, body, hedge)
			prev = rep
			progressed = true
			switch classify(res) {
			case outcomeDone:
				return res
			case outcomeRetrySame:
				lastCause = causeOf(res)
				sleep := policy.backoff(calls, rt.retry.rand)
				if ra, ok := RetryAfter(res.resp); ok {
					if ra > policy.MaxRetryAfter {
						ra = policy.MaxRetryAfter
					}
					if ra > sleep {
						sleep = ra
					}
				}
				dropResponse(res.resp)
				if err := rt.retry.doSleep(ctx, sleep); err != nil {
					return exhaust(lastCause, err, hedge)
				}
				i-- // same replica again
			case outcomeFailover:
				lastCause = causeOf(res)
				dropResponse(res.resp)
			}
		}
		if !progressed {
			// Every replica refused locally (breakers open): nothing to call.
			if calls == 0 {
				return upstreamResult{err: errNoReplica, hedge: hedge}
			}
			return exhaust(lastCause, nil, hedge)
		}
		if calls >= policy.MaxAttempts {
			return exhaust(lastCause, nil, hedge)
		}
		if err := rt.retry.doSleep(ctx, policy.backoff(round+1, rt.retry.rand)); err != nil {
			return exhaust(lastCause, err, hedge)
		}
	}
}

// hedgeAttempt is the single speculative call: the first in-rotation owner
// after the primary, no retries of its own.
func (rt *Router) hedgeAttempt(ctx context.Context, r *http.Request, body []byte, order []string) upstreamResult {
	for _, name := range order[1:] {
		rep := rt.replicas[name]
		if !rep.breaker.Allow() {
			continue
		}
		rt.counters.hedgesLaunched.Add(1)
		res := rt.call(ctx, rep, r, body, true)
		if classify(res) == outcomeDone {
			return res
		}
		cause := causeOf(res)
		dropResponse(res.resp)
		return upstreamResult{err: fmt.Errorf("hedge: %s", cause), hedge: true}
	}
	return upstreamResult{err: errNoReplica, hedge: true}
}

func exhaust(lastCause string, ctxErr error, hedge bool) upstreamResult {
	if lastCause == "" {
		lastCause = "no attempt made"
	}
	if ctxErr != nil {
		return upstreamResult{err: fmt.Errorf("%v (last: %s)", ctxErr, lastCause), hedge: hedge}
	}
	return upstreamResult{err: fmt.Errorf("retry budget exhausted (last: %s)", lastCause), hedge: hedge}
}

func dropResponse(resp *http.Response) {
	if resp != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}
}

func causeOf(res upstreamResult) string {
	if res.err != nil {
		return res.err.Error()
	}
	if res.resp != nil {
		return "status " + strconv.Itoa(res.resp.StatusCode) + " from " + res.rep.name
	}
	return "unknown"
}

// accountCall classifies one upstream call into the reconciling counters
// (see fleetCounters).
func (rt *Router) accountCall(prev, next *replica, hedge bool) {
	switch {
	case hedge:
		// hedgesLaunched counts in hedgeAttempt, per actual call.
	case prev == nil:
		rt.counters.routed.Add(1)
	case prev == next:
		rt.counters.retries.Add(1)
	default:
		rt.counters.failovers.Add(1)
	}
}

type outcome int

const (
	outcomeDone outcome = iota
	outcomeRetrySame
	outcomeFailover
)

// classify maps a call result onto the schedule's moves. 429 means the
// replica is alive but shedding (admission): retry it. Transport errors and
// 502/503 mean it cannot take this work: fail over. Everything else —
// including 4xx and 504 — is a definitive answer to hand the client.
func classify(res upstreamResult) outcome {
	if res.err != nil {
		return outcomeFailover
	}
	switch res.resp.StatusCode {
	case http.StatusTooManyRequests:
		return outcomeRetrySame
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		return outcomeFailover
	}
	return outcomeDone
}

// call issues one upstream request and feeds the replica's breaker: a
// transport error or 502/503 is a breaker failure (the replica cannot serve
// work), any other response proves liveness and serviceability.
func (rt *Router) call(ctx context.Context, rep *replica, r *http.Request, body []byte, hedge bool) upstreamResult {
	req, err := http.NewRequestWithContext(ctx, r.Method, rep.baseURL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		rep.breaker.OnFailure()
		rt.noteAvailability(rep)
		return upstreamResult{err: err, rep: rep, hedge: hedge}
	}
	copyProxyHeaders(req.Header, r.Header)
	rep.inFlight.Add(1)
	rep.attempts.Add(1)
	resp, err := rt.client.Do(req)
	rep.inFlight.Add(-1)
	failure := err != nil ||
		resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable
	if failure {
		rep.failures.Add(1)
		rep.breaker.OnFailure()
	} else {
		rep.breaker.OnSuccess()
	}
	rt.noteAvailability(rep)
	return upstreamResult{resp: resp, err: err, rep: rep, hedge: hedge}
}

// hop-by-hop headers never forward (RFC 9110 §7.6.1).
var hopHeaders = []string{"Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade"}

func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		dst[k] = append([]string(nil), vs...)
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	h := w.Header()
	for k, vs := range resp.Header {
		skip := false
		for _, hh := range hopHeaders {
			if http.CanonicalHeaderKey(hh) == k {
				skip = true
				break
			}
		}
		if !skip {
			h[k] = vs
		}
	}
	w.WriteHeader(resp.StatusCode)
	// Flush per chunk so NDJSON streams (scenario/query) keep flowing
	// through the proxy.
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
