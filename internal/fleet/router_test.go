package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %v", what, d)
}

func steadySpec(fp string) service.ModelSpec {
	return service.ModelSpec{Floorplan: fp, Package: "oil-silicon"}
}

func steadyBody(t *testing.T, spec service.ModelSpec) []byte {
	t.Helper()
	b, err := json.Marshal(service.SteadyRequest{Model: spec, Power: map[string]float64{"c0_0": 12}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// serviceFleet spins up n real service replicas behind a router. Probing is
// effectively off (1 h interval) so tests control health purely through
// request outcomes; mutate cfg via tweak.
func serviceFleet(t *testing.T, n int, tweak func(*Config)) (*Harness, *Router, *httptest.Server) {
	t.Helper()
	h, err := NewHarness(n, func(int) http.Handler {
		return service.New(service.Config{MaxConcurrent: 4, QueueDepth: 32}).Handler()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	cfg := Config{
		Replicas:      h.Addrs(),
		ProbeInterval: time.Hour,
		Breaker:       BreakerConfig{FailureThreshold: 3, OpenTimeout: 500 * time.Millisecond},
		Retry:         RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, MaxRetryAfter: 20 * time.Millisecond},
		HedgeDelay:    -1,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return h, rt, front
}

func replicaStat(t *testing.T, s Stats, addr string) ReplicaStats {
	t.Helper()
	for _, rs := range s.Replicas {
		if rs.Addr == addr {
			return rs
		}
	}
	t.Fatalf("no stats row for %s in %+v", addr, s.Replicas)
	return ReplicaStats{}
}

// TestRouterAffinity: identical solve requests land on one replica — the
// model fingerprint's ring owner — so every request after the first hits
// that replica's compiled-model cache.
func TestRouterAffinity(t *testing.T) {
	_, rt, front := serviceFleet(t, 3, nil)
	spec := steadySpec("grid:3x3")
	body := steadyBody(t, spec)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	owner := rt.Ring().Owner(fp)

	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, data)
		}
		var sr service.SteadyResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		want := "hit"
		if i == 0 {
			want = "miss"
		}
		if sr.Cache != want {
			t.Fatalf("request %d cache = %q, want %q (affinity broken)", i, sr.Cache, want)
		}
	}
	s := rt.Stats()
	for _, rs := range s.Replicas {
		want := int64(0)
		if rs.Addr == owner {
			want = 5
		}
		if rs.Attempts != want {
			t.Errorf("replica %s attempts = %d, want %d", rs.Addr, rs.Attempts, want)
		}
	}
	if s.Proxied != 5 || s.Routed != 5 || s.Retries+s.Failovers+s.HedgesLaunched != 0 {
		t.Errorf("counters = %+v", s)
	}
}

// TestRouterFailover: with the ring owner dead, requests fail over to the
// key's next preferred replica; after FailureThreshold failures the breaker
// ejects the dead replica and later requests route straight to the
// successor.
func TestRouterFailover(t *testing.T) {
	h, rt, front := serviceFleet(t, 3, nil)
	spec := steadySpec("grid:4x4")
	body := steadyBody(t, spec)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	owners := rt.Ring().Owners(fp, 0)
	victim, successor := owners[0], owners[1]
	for i, addr := range h.Addrs() {
		if addr == victim {
			h.Kill(i)
		}
	}

	for i := 0; i < 4; i++ {
		resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, data)
		}
	}
	s := rt.Stats()
	vs := replicaStat(t, s, victim)
	// Requests 1..3 each burn one call on the dead owner (tripping the
	// breaker at 3); request 4 finds it out of rotation and skips it.
	if vs.Attempts != 3 || vs.Failures != 3 {
		t.Errorf("victim attempts/failures = %d/%d, want 3/3", vs.Attempts, vs.Failures)
	}
	if vs.Breaker != "open" || vs.Available {
		t.Errorf("victim breaker = %s available=%v, want open/unavailable", vs.Breaker, vs.Available)
	}
	ss := replicaStat(t, s, successor)
	if ss.Attempts != 4 {
		t.Errorf("successor attempts = %d, want 4 (3 failovers + 1 direct)", ss.Attempts)
	}
	if s.Failovers != 3 || s.Routed != 4 || s.RingMoves < 1 {
		t.Errorf("counters = %+v", s)
	}
	var sum int64
	for _, rs := range s.Replicas {
		sum += rs.Attempts
	}
	if sum != s.Routed+s.Retries+s.Failovers+s.HedgesLaunched {
		t.Errorf("attempt identity broken: sum=%d stats=%+v", sum, s)
	}
}

// customFleet builds a router over harness replicas serving custom handlers
// (each must answer GET /readyz itself if probing is on).
func customFleet(t *testing.T, n int, handler func(i int) http.Handler, tweak func(*Config)) (*Harness, *Router, *httptest.Server) {
	t.Helper()
	h, err := NewHarness(n, handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	cfg := Config{
		Replicas:      h.Addrs(),
		ProbeInterval: time.Hour,
		Breaker:       BreakerConfig{FailureThreshold: 1, OpenTimeout: 500 * time.Millisecond},
		Retry:         RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, MaxRetryAfter: 20 * time.Millisecond},
		HedgeDelay:    -1,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return h, rt, front
}

// TestRouterRetryOn429: a shedding replica (429 + Retry-After) is retried in
// place — it is alive and holds the warm cache — not failed over.
func TestRouterRetryOn429(t *testing.T) {
	var calls atomic.Int64
	_, rt, front := customFleet(t, 1, func(int) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
		mux.HandleFunc("POST /v1/steady", func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			io.WriteString(w, `{"cache":"miss"}`)
		})
		return mux
	}, nil)

	body := steadyBody(t, steadySpec("grid:3x3"))
	resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d %s", resp.StatusCode, data)
	}
	s := rt.Stats()
	if s.Retries != 1 || s.Routed != 1 || s.Failovers != 0 {
		t.Errorf("counters = %+v, want 1 retry on the same replica", s)
	}
	if rs := s.Replicas[0]; rs.Attempts != 2 || rs.Failures != 0 {
		t.Errorf("replica attempts/failures = %d/%d, want 2/0 (429 is not a breaker failure)", rs.Attempts, rs.Failures)
	}
	if rt.Stats().Replicas[0].Breaker != "closed" {
		t.Error("429 must not trip the breaker")
	}
}

// TestRouterHedge: a slow primary is raced by one hedge to the next ring
// owner after HedgeDelay, the fast answer wins, and a persisting transient
// is never hedged.
func TestRouterHedge(t *testing.T) {
	var slowIdx atomic.Int64
	slowIdx.Store(-1)
	handler := func(i int) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			who := "fast"
			if int64(i) == slowIdx.Load() {
				time.Sleep(400 * time.Millisecond)
				who = "slow"
			}
			writeJSON(w, http.StatusOK, map[string]string{"who": who})
		})
		return mux
	}
	h, rt, front := customFleet(t, 2, handler, func(c *Config) {
		c.HedgeDelay = 30 * time.Millisecond
		// A won hedge cancels the slow primary, which its breaker counts as a
		// failure; keep the threshold out of reach so the primary stays in
		// rotation for the persist-transient half of the test.
		c.Breaker = BreakerConfig{FailureThreshold: 100, OpenTimeout: 500 * time.Millisecond}
	})

	spec := steadySpec("grid:3x3")
	body := steadyBody(t, spec)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	primary := rt.Ring().Owner(fp)
	for i, addr := range h.Addrs() {
		if addr == primary {
			slowIdx.Store(int64(i))
		}
	}

	resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "fast") {
		t.Fatalf("hedged request: %d %s, want the fast hedge to win", resp.StatusCode, data)
	}
	waitCond(t, time.Second, "loser drained", func() bool {
		s := rt.Stats()
		return s.HedgesLaunched == 1 && s.HedgesWon == 1
	})

	// A transient carrying persist must fail over serially, never hedge.
	tb, _ := json.Marshal(map[string]any{
		"model":   spec,
		"trace":   map[string]any{"names": []string{"c0_0"}, "interval": 0.01, "rows": [][]float64{{1}, {1}}},
		"persist": "run-x",
	})
	start := time.Now()
	resp2, data2 := postJSON(t, front.Client(), front.URL+"/v1/transient", tb)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("persist transient: %d %s", resp2.StatusCode, data2)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond && strings.Contains(string(data2), "slow") {
		t.Fatalf("persist transient finished in %v with the slow primary — did it hedge?", elapsed)
	}
	if s := rt.Stats(); s.HedgesLaunched != 1 {
		t.Errorf("hedges_launched = %d after persist transient, want still 1", s.HedgesLaunched)
	}
}

// TestRouterExhaustAndNoReplica: with every replica dead, the first request
// burns its budget into a 502 and trips every breaker; subsequent requests
// shed 503 + Retry-After without an upstream call, and /readyz reports the
// empty rotation while /healthz stays alive.
func TestRouterExhaustAndNoReplica(t *testing.T) {
	h, rt, front := customFleet(t, 2, func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	}, nil)
	h.Kill(0)
	h.Kill(1)

	body := steadyBody(t, steadySpec("grid:3x3"))
	resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(data), "retry budget exhausted") {
		t.Fatalf("first request: %d %s, want 502 exhausted", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("502 must carry Retry-After")
	}

	resp2, data2 := postJSON(t, front.Client(), front.URL+"/v1/steady", body)
	if resp2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data2), "no replica available") {
		t.Fatalf("second request: %d %s, want 503 no-replica", resp2.StatusCode, data2)
	}
	if resp2.Header.Get("Retry-After") != "1" {
		t.Errorf("shed Retry-After = %q, want 1", resp2.Header.Get("Retry-After"))
	}

	rz, err := front.Client().Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with empty rotation, want 503", rz.StatusCode)
	}
	hz, err := front.Client().Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200 (router liveness is not fleet readiness)", hz.StatusCode)
	}

	s := rt.Stats()
	if s.Exhausted != 1 || s.NoReplica != 1 || s.Proxied != 2 {
		t.Errorf("counters = %+v", s)
	}
	if s.Proxied != s.Routed+s.RouteErrors+s.NoReplica {
		t.Errorf("proxied identity broken: %+v", s)
	}
}

// TestRouterStatsEndpoint: the proxy's /v1/stats serves the fleet block.
func TestRouterStatsEndpoint(t *testing.T) {
	_, _, front := serviceFleet(t, 2, nil)
	resp, err := front.Client().Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Fleet.Replicas) != 2 {
		t.Fatalf("fleet stats replicas = %d, want 2", len(sr.Fleet.Replicas))
	}
	for _, rs := range sr.Fleet.Replicas {
		if rs.Breaker != "closed" || !rs.Available {
			t.Errorf("fresh replica %s: breaker=%s available=%v", rs.Addr, rs.Breaker, rs.Available)
		}
	}
}

// TestRouterBodyLimit: bodies beyond MaxBodyBytes are rejected before any
// upstream call (they could not be replayed on retry).
func TestRouterBodyLimit(t *testing.T) {
	_, rt, front := serviceFleet(t, 1, func(c *Config) { c.MaxBodyBytes = 128 })
	big := bytes.Repeat([]byte("x"), 4096)
	resp, data := postJSON(t, front.Client(), front.URL+"/v1/steady", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d %s, want 413", resp.StatusCode, data)
	}
	if s := rt.Stats(); s.RouteErrors != 1 || s.Routed != 0 {
		t.Errorf("counters = %+v", s)
	}
}

// TestRouteKey pins the routing keys: solves key on the model fingerprint
// (the replica cache key), queries on the series, everything else on a
// stable body digest.
func TestRouteKey(t *testing.T) {
	rt, err := New(Config{Replicas: []string{"127.0.0.1:1"}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	spec := steadySpec("grid:3x3")
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	steady := httptest.NewRequest("POST", "/v1/steady", nil)
	if got := rt.routeKey(steady, steadyBody(t, spec)); got != fp {
		t.Errorf("steady key = %q, want model fingerprint %q", got, fp)
	}

	sweepBody, _ := json.Marshal(map[string]any{"scenarios": []map[string]any{{"model": spec}}})
	sweep := httptest.NewRequest("POST", "/v1/sweep", nil)
	if got := rt.routeKey(sweep, sweepBody); got != fp {
		t.Errorf("sweep key = %q, want first scenario's fingerprint %q", got, fp)
	}

	// Streamed transient: the spec rides the query string, the body is NDJSON.
	stream := httptest.NewRequest("POST", "/v1/transient?floorplan=grid:3x3&package=oil-silicon", nil)
	stream.Header.Set("Content-Type", "application/x-ndjson")
	wantFP, err := service.ModelSpec{Floorplan: "grid:3x3", Package: "oil-silicon"}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.routeKey(stream, []byte("0 1 2\n")); got != wantFP {
		t.Errorf("streamed transient key = %q, want %q", got, wantFP)
	}

	q := httptest.NewRequest("GET", "/v1/query?series=run-1/c0_0", nil)
	if got := rt.routeKey(q, nil); got != "series:run-1/c0_0" {
		t.Errorf("query key = %q", got)
	}
	listing := httptest.NewRequest("GET", "/v1/query/series", nil)
	if got := rt.routeKey(listing, nil); got != "series-listing" {
		t.Errorf("listing key = %q", got)
	}

	// Uninterpretable bodies: stable digest, distinct per body.
	junk := httptest.NewRequest("POST", "/v1/steady", nil)
	k1 := rt.routeKey(junk, []byte("not json"))
	k2 := rt.routeKey(junk, []byte("not json"))
	k3 := rt.routeKey(junk, []byte("other"))
	if k1 != k2 || k1 == k3 || !strings.HasPrefix(k1, "req:") {
		t.Errorf("digest keys: %q %q %q", k1, k2, k3)
	}
}

// TestHedgeEligible pins which requests may be raced: idempotent solves and
// reads, never a persisting transient.
func TestHedgeEligible(t *testing.T) {
	spec := steadySpec("grid:3x3")
	mk := func(method, path, ct string, body []byte) (*http.Request, []byte) {
		r := httptest.NewRequest(method, path, nil)
		if ct != "" {
			r.Header.Set("Content-Type", ct)
		}
		return r, body
	}
	persistBody, _ := json.Marshal(map[string]any{"model": spec, "persist": "run-1"})
	pureBody, _ := json.Marshal(map[string]any{"model": spec})
	cases := []struct {
		name string
		req  *http.Request
		body []byte
		want bool
	}{}
	add := func(name string, r *http.Request, b []byte, want bool) {
		cases = append(cases, struct {
			name string
			req  *http.Request
			body []byte
			want bool
		}{name, r, b, want})
	}
	r, b := mk("POST", "/v1/steady", "", pureBody)
	add("steady", r, b, true)
	r, b = mk("POST", "/v1/invert", "", pureBody)
	add("invert", r, b, true)
	r, b = mk("GET", "/v1/query?series=s", "", nil)
	add("query", r, b, true)
	r, b = mk("POST", "/v1/transient", "", pureBody)
	add("pure transient", r, b, true)
	r, b = mk("POST", "/v1/transient", "", persistBody)
	add("persisting transient", r, b, false)
	r, b = mk("POST", "/v1/transient?persist=run-2", "application/x-ndjson", []byte("0 1\n"))
	add("persisting streamed transient", r, b, false)
	r, b = mk("POST", "/v1/transient", "application/x-ndjson", []byte("0 1\n"))
	add("pure streamed transient", r, b, true)
	r, b = mk("POST", "/v1/sweep", "", nil)
	add("sweep", r, b, false)
	r, b = mk("POST", "/v1/scenario", "", nil)
	add("scenario", r, b, false)
	for _, tc := range cases {
		if got := hedgeEligible(tc.req, tc.body); got != tc.want {
			t.Errorf("%s: hedgeEligible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNewValidation: config errors surface at construction.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty replica list must fail")
	}
	if _, err := New(Config{Replicas: []string{"a:1", "a:1"}}); err == nil {
		t.Error("duplicate replicas must fail")
	}
	rt, err := New(Config{Replicas: []string{" a:1 ", "http://b:2/"}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("normalizing config failed: %v", err)
	}
	defer rt.Close()
	if fmt.Sprint(rt.Ring().Replicas()) != "[a:1 http://b:2/]" {
		t.Errorf("membership = %v", rt.Ring().Replicas())
	}
	if rt.replicas["a:1"].baseURL != "http://a:1" || rt.replicas["http://b:2/"].baseURL != "http://b:2" {
		t.Errorf("base URLs: %q %q", rt.replicas["a:1"].baseURL, rt.replicas["http://b:2/"].baseURL)
	}
}
