package fleet

import "net/http"

// ReplicaStats is one replica's row in the fleet stats block.
type ReplicaStats struct {
	// Addr is the configured replica address (ring member name).
	Addr string `json:"addr"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Available reports ring rotation: keys route here unless true turns
	// false, at which point the next clockwise owner takes over.
	Available bool `json:"available"`
	// InFlight counts upstream calls running right now.
	InFlight int64 `json:"in_flight"`
	// Attempts counts upstream calls ever issued to this replica; Failures
	// counts those classified as replica failures (transport error, 502/503).
	Attempts int64 `json:"attempts"`
	Failures int64 `json:"failures"`
	// Probes / ProbeFailures count health-prober readiness checks.
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
	// BreakerTrips counts closed→open transitions; Transitions counts
	// rotation flips (each one is a deterministic ring reassignment).
	BreakerTrips int64 `json:"breaker_trips"`
	Transitions  int64 `json:"transitions"`
}

// Stats is the router's `fleet` block in /v1/stats. The call counters
// reconcile exactly: Routed + Retries + Failovers + HedgesLaunched equals
// the sum of per-replica Attempts (every upstream call is exactly one of
// the four).
type Stats struct {
	Replicas []ReplicaStats `json:"replicas"`
	// Proxied counts logical client requests entering the router; Routed
	// counts those that issued at least one primary upstream call.
	Proxied int64 `json:"proxied"`
	Routed  int64 `json:"routed"`
	// RouteErrors counts requests rejected before any upstream call
	// (unreadable or oversized bodies); NoReplica counts requests shed with
	// 503 because no replica was in rotation.
	RouteErrors int64 `json:"route_errors"`
	NoReplica   int64 `json:"no_replica"`
	// Retries counts repeat calls to the same replica (429 + Retry-After);
	// Failovers counts re-routes to the next ring owner.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// HedgesLaunched counts speculative duplicate calls; HedgesWon counts
	// logical requests whose hedge answered first.
	HedgesLaunched int64 `json:"hedges_launched"`
	HedgesWon      int64 `json:"hedges_won"`
	// Exhausted counts logical requests that ran out of retry budget (502).
	Exhausted int64 `json:"exhausted"`
	// RingMoves counts availability transitions: each one deterministically
	// reassigns the flipped replica's key share.
	RingMoves int64 `json:"ring_moves"`
}

// StatsResponse is the router's /v1/stats payload. In fleet mode the proxy
// answers stats itself — per-replica solver/cache/admission detail stays on
// each replica's own /v1/stats.
type StatsResponse struct {
	Fleet Stats `json:"fleet"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	s := Stats{
		Proxied:        rt.counters.proxied.Load(),
		Routed:         rt.counters.routed.Load(),
		RouteErrors:    rt.counters.routeErrors.Load(),
		NoReplica:      rt.counters.noReplica.Load(),
		Retries:        rt.counters.retries.Load(),
		Failovers:      rt.counters.failovers.Load(),
		HedgesLaunched: rt.counters.hedgesLaunched.Load(),
		HedgesWon:      rt.counters.hedgesWon.Load(),
		Exhausted:      rt.counters.exhausted.Load(),
		RingMoves:      rt.counters.ringMoves.Load(),
	}
	for _, name := range rt.ring.Replicas() {
		rep := rt.replicas[name]
		s.Replicas = append(s.Replicas, ReplicaStats{
			Addr:          rep.name,
			Breaker:       rep.breaker.State().String(),
			Available:     rep.up.Load(),
			InFlight:      rep.inFlight.Load(),
			Attempts:      rep.attempts.Load(),
			Failures:      rep.failures.Load(),
			Probes:        rep.probes.Load(),
			ProbeFailures: rep.probeFails.Load(),
			BreakerTrips:  rep.breaker.Trips(),
			Transitions:   rep.transitions.Load(),
		})
	}
	return s
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{Fleet: rt.Stats()})
}
