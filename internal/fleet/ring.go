package fleet

import (
	"hash/fnv"
	"math"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes and bounded-load owner
// selection (DESIGN.md §13.1). The membership is fixed at construction — the
// configured replica set — and never rebuilt: availability is a filter
// applied at lookup time, so a replica dying moves exactly the keys it owned
// (its vnode arcs fall through to the next distinct replica clockwise) and
// its return moves exactly those keys back. That makes reassignment
// deterministic and minimal: ~K/len(replicas) keys move per leave/join, and
// two routers with the same replica list agree on every owner.
//
// Keys are model fingerprints (hotspot.Config.Fingerprint — a SHA-256 hex
// digest), so the key space is uniform by construction; vnodes smooth the
// per-replica share. Hashing is FNV-1a 64 passed through a splitmix64
// finalizer — FNV alone has weak high-bit avalanche on short, similar
// inputs (replica addresses differing in one byte), which clusters ring
// points badly. Both stages are fixed functions, stable across processes
// and Go versions, which the deterministic-reassignment contract depends
// on.
type Ring struct {
	replicas []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// DefaultVnodes is the per-replica virtual-node count. 128 points per
// replica keeps the share imbalance under a few percent for small fleets.
const DefaultVnodes = 128

// NewRing builds the ring over the replica list. vnodes <= 0 selects
// DefaultVnodes. Replica order does not affect key ownership (points sort by
// hash), but ties — astronomically unlikely with 64-bit FNV — break by
// replica index, so the list order still pins a total order.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	var buf [8]byte
	for ri, addr := range r.replicas {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			_, _ = h.Write([]byte(addr))
			buf[0] = '#'
			buf[1] = byte(v)
			buf[2] = byte(v >> 8)
			_, _ = h.Write(buf[:3])
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), replica: ri})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the configured membership (construction order).
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a fixed bijection that spreads FNV's
// weakly-avalanched bits over the whole 64-bit ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owners returns up to max distinct replicas in clockwise ring order from
// the key's point: the deterministic preference order for routing and
// failover. max <= 0 or beyond the membership yields every replica.
func (r *Ring) Owners(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.replicas) {
		max = len(r.replicas)
	}
	kh := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	seen := make([]bool, len(r.replicas))
	out := make([]string, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

// Owner is the first entry of Owners: the replica whose cache most likely
// holds the key's compiled model.
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// OwnerBounded walks the key's preference order and returns the first
// replica that is available and under its bounded-load capacity
// c·ceil((total+1)/alive) (the consistent-hashing-with-bounded-loads rule:
// no replica takes more than factor c of the mean load, the +1 counting the
// request being placed). When every available replica is at capacity it
// falls back to the least-loaded available one — shedding is the admission
// layer's job, not the router's. available and load are lookup-time
// filters; a nil available means every replica, a nil load means zero load
// (plain consistent hashing). The second return is the preference-order
// position actually used (0 = affinity owner), for stats.
func (r *Ring) OwnerBounded(key string, c float64, available func(string) bool, load func(string) int) (string, int) {
	owners := r.Owners(key, 0)
	if len(owners) == 0 {
		return "", -1
	}
	if c < 1 {
		c = 1.25
	}
	alive, total := 0, 0
	for _, o := range owners {
		if available == nil || available(o) {
			alive++
			if load != nil {
				total += load(o)
			}
		}
	}
	if alive == 0 {
		return "", -1
	}
	capacity := int(math.Ceil(c * float64(total+1) / float64(alive)))
	bestIdx, bestLoad := -1, math.MaxInt
	for i, o := range owners {
		if available != nil && !available(o) {
			continue
		}
		l := 0
		if load != nil {
			l = load(o)
		}
		if l < capacity {
			return o, i
		}
		if l < bestLoad {
			bestIdx, bestLoad = i, l
		}
	}
	return owners[bestIdx], bestIdx
}
