// Package fleet is the routing front end for a multi-replica thermal
// service (DESIGN.md §13): it spreads requests across N service.Server
// replicas and survives replicas dying mid-load.
//
// Solve requests route by the model fingerprint they resolve to — the same
// hotspot.Config.Fingerprint key the per-replica single-flight model cache
// uses — over a consistent-hash ring (virtual nodes, bounded load), so the
// replica that likely holds the compiled model serves the request and a
// membership change moves only ~K/N keys. A per-replica health prober
// (periodic GET /readyz) and a closed/open/half-open circuit breaker eject
// bad replicas from rotation; the request path does capped-exponential
// retries with full jitter honoring the service's Retry-After convention,
// deadline-aware hedged requests on idempotent solves, and failover to the
// next ring owner — where the replica's own single-flight cache guarantees
// the model recompiles at most once.
//
// The router serves the same HTTP surface as a single replica plus its own
// /healthz, /readyz and a /v1/stats fleet block; cmd/thermsvc exposes it as
// `thermsvc -fleet host:port,host:port,...`.
package fleet

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the router. Only Replicas is required.
type Config struct {
	// Replicas lists the backend addresses ("host:port" or "http://host:port").
	Replicas []string
	// Vnodes is the per-replica virtual-node count (default DefaultVnodes).
	Vnodes int
	// BoundedLoadFactor caps any replica's share of in-flight load at this
	// multiple of the fleet mean (default 1.25; values < 1 take the default).
	BoundedLoadFactor float64
	// ProbeInterval spaces health-probe rounds (default 1 s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 500 ms).
	ProbeTimeout time.Duration
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// Retry tunes the per-request retry/backoff budget. MaxAttempts is the
	// total upstream-call budget per logical request, across failovers.
	Retry RetryPolicy
	// HedgeDelay is how long the primary attempt runs alone before an
	// idempotent request is hedged to the next ring owner (default 200 ms;
	// negative disables hedging).
	HedgeDelay time.Duration
	// MaxBodyBytes caps the buffered request body — bodies must be held in
	// memory to be replayable across retries and hedges (default 64 MiB).
	MaxBodyBytes int64
	// Transport overrides the upstream round tripper (tests).
	Transport http.RoundTripper
}

func (c Config) defaulted() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.BoundedLoadFactor < 1 {
		c.BoundedLoadFactor = 1.25
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 200 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	c.Retry = c.Retry.defaulted()
	return c
}

// replica is the router's view of one backend.
type replica struct {
	name    string // ring member key (normalized config entry)
	baseURL string // "http://host:port"
	breaker *Breaker

	up          atomic.Bool  // availability as last derived from the breaker
	inFlight    atomic.Int64 // upstream calls currently running
	attempts    atomic.Int64 // upstream calls ever issued
	failures    atomic.Int64 // calls classified as replica failures
	probes      atomic.Int64 // health probes issued
	probeFails  atomic.Int64 // health probes failed
	transitions atomic.Int64 // up<->down flips
}

// Router fans requests across the replica fleet.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica // by ring member name
	client   *http.Client
	retry    *RetryClient // reused for probe-free helpers; stats hooks wired

	counters fleetCounters

	stopOnce sync.Once
	stopc    chan struct{}
	done     sync.WaitGroup
}

// fleetCounters are the router-level accounting the chaos suite reconciles
// against its request log: every upstream call is exactly one of a primary
// (first call of a logical request), a retry (same replica again), a
// failover (moved to another replica) or a hedge, so
//
//	sum(replica.attempts) = primaries + retries + failovers + hedges_launched
//
// holds at all times once the router is idle.
type fleetCounters struct {
	proxied        atomic.Int64 // logical requests entering the router
	routed         atomic.Int64 // logical requests that issued >= 1 primary call
	routeErrors    atomic.Int64 // rejected before any upstream call (bad body, too large)
	noReplica      atomic.Int64 // shed: no available replica
	retries        atomic.Int64
	failovers      atomic.Int64
	hedgesLaunched atomic.Int64
	hedgesWon      atomic.Int64
	exhausted      atomic.Int64 // logical requests that ran out of attempt budget
	ringMoves      atomic.Int64 // availability transitions (keys reassigned)
}

// New builds a router over the configured replicas and starts its health
// prober. Callers must Close it.
func New(cfg Config) (*Router, error) {
	cfg = cfg.defaulted()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	names := make([]string, 0, len(cfg.Replicas))
	replicas := make(map[string]*replica, len(cfg.Replicas))
	for _, raw := range cfg.Replicas {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		base := name
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimRight(base, "/")
		if _, dup := replicas[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica %q", name)
		}
		rep := &replica{name: name, baseURL: base, breaker: NewBreaker(cfg.Breaker)}
		rep.up.Store(true)
		replicas[name] = rep
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 30 * time.Second}
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(names, cfg.Vnodes),
		replicas: replicas,
		client:   &http.Client{Transport: transport},
		stopc:    make(chan struct{}),
	}
	rt.retry = &RetryClient{HTTP: rt.client, Policy: cfg.Retry}
	rt.done.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober. In-flight proxied requests finish.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopc) })
	rt.done.Wait()
}

// Ring exposes the ring (tests, stats).
func (rt *Router) Ring() *Ring { return rt.ring }

// available reports whether the named replica is in rotation: its breaker
// is not refusing outright. Half-open replicas stay available — the breaker
// itself meters how many probes get through.
func (rt *Router) available(name string) bool {
	rep := rt.replicas[name]
	return rep != nil && rep.breaker.State() != BreakerOpen
}

// noteAvailability re-derives a replica's in-rotation state from its breaker
// and counts the transition (a ring move: the replica's key share just
// changed hands) when it flips.
func (rt *Router) noteAvailability(rep *replica) {
	up := rep.breaker.State() != BreakerOpen
	if rep.up.Swap(up) != up {
		rep.transitions.Add(1)
		rt.counters.ringMoves.Add(1)
	}
}

// AvailableReplicas returns the replicas currently in rotation, in ring
// membership order.
func (rt *Router) AvailableReplicas() []string {
	var out []string
	for _, name := range rt.ring.Replicas() {
		if rt.available(name) {
			out = append(out, name)
		}
	}
	return out
}

// --- health probing ---

// probeLoop drives periodic /readyz probes against every replica. Probe
// outcomes feed the same per-replica breaker as real traffic: consecutive
// failures trip a silent replica out of rotation, and the half-open state
// admits the probe that lets a revived replica rejoin without taking a
// client request as the guinea pig.
func (rt *Router) probeLoop() {
	defer rt.done.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopc:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, rep := range rt.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				rt.probe(rep)
			}(rep)
		}
		wg.Wait()
	}
}

// probe issues one readiness check, gated by the breaker so an open replica
// is only re-contacted once its open timeout admits a half-open probe.
func (rt *Router) probe(rep *replica) {
	if !rep.breaker.Allow() {
		rt.noteAvailability(rep)
		return
	}
	rep.probes.Add(1)
	ok := rt.probeOnce(rep)
	if ok {
		rep.breaker.OnSuccess()
	} else {
		rep.probeFails.Add(1)
		rep.breaker.OnFailure()
	}
	rt.noteAvailability(rep)
}

func (rt *Router) probeOnce(rep *replica) bool {
	req, err := http.NewRequest(http.MethodGet, rep.baseURL+"/readyz", nil)
	if err != nil {
		return false
	}
	client := &http.Client{Transport: rt.client.Transport, Timeout: rt.cfg.ProbeTimeout}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
