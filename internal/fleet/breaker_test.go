package fleet

import (
	"testing"
	"time"
)

// breakerStep is one scripted move in the transition table: an event applied
// to the breaker plus the expectations that must hold right after it.
type breakerStep struct {
	op        string // "fail" | "ok" | "allow" | "deny" | "advance"
	d         time.Duration
	wantState BreakerState
}

// TestBreakerTransitions is the table test for the closed/open/half-open
// state machine, on an injected clock: trip threshold, open timeout, the
// half-open probe limit, and both half-open exits.
func TestBreakerTransitions(t *testing.T) {
	cases := []struct {
		name  string
		cfg   BreakerConfig
		steps []breakerStep
	}{
		{
			name: "trips at consecutive threshold",
			cfg:  BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second},
			steps: []breakerStep{
				{op: "allow", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
			},
		},
		{
			name: "success resets the failure streak",
			cfg:  BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second},
			steps: []breakerStep{
				{op: "fail", wantState: BreakerClosed},
				{op: "ok", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
			},
		},
		{
			name: "open refuses until the timeout, then meters half-open probes",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenProbes: 2},
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
				{op: "advance", d: 999 * time.Millisecond, wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
				{op: "advance", d: time.Millisecond, wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen}, // probe 1 admitted
				{op: "allow", wantState: BreakerHalfOpen}, // probe 2 admitted
				{op: "deny", wantState: BreakerHalfOpen},  // probe limit reached
			},
		},
		{
			name: "half-open success closes and releases the probe slots",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenProbes: 1},
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: time.Second, wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen},
				{op: "deny", wantState: BreakerHalfOpen},
				{op: "ok", wantState: BreakerClosed},
				{op: "allow", wantState: BreakerClosed},
				{op: "allow", wantState: BreakerClosed}, // closed: unmetered
			},
		},
		{
			name: "half-open failure reopens and re-arms the timeout",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenProbes: 1},
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: time.Second, wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen},
				{op: "fail", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
				{op: "advance", d: 500 * time.Millisecond, wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen}, // timeout restarted at reopen
				{op: "advance", d: 500 * time.Millisecond, wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen},
				{op: "ok", wantState: BreakerClosed},
			},
		},
		{
			name: "straggler failure while already open is absorbed",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second},
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: time.Second, wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := time.Unix(1000, 0)
			cfg := tc.cfg
			cfg.now = func() time.Time { return now }
			b := NewBreaker(cfg)
			for i, st := range tc.steps {
				switch st.op {
				case "fail":
					b.OnFailure()
				case "ok":
					b.OnSuccess()
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true", i)
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false", i)
					}
				case "advance":
					now = now.Add(st.d)
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
				if got := b.State(); got != st.wantState {
					t.Fatalf("step %d (%s): state = %s, want %s", i, st.op, got, st.wantState)
				}
			}
		})
	}
}

// TestBreakerTrips: the trip counter counts closed→open (and half-open→open)
// transitions over the breaker's lifetime.
func TestBreakerTrips(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second,
		now: func() time.Time { return now }})
	if b.Trips() != 0 {
		t.Fatalf("fresh breaker trips = %d", b.Trips())
	}
	b.OnFailure() // trip 1
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	b.OnFailure() // trip 2 (from half-open)
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

// TestBreakerDefaults: the zero config takes the documented defaults and the
// state strings match the stats wire format.
func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.defaulted()
	if cfg.FailureThreshold != 3 || cfg.OpenTimeout != time.Second || cfg.HalfOpenProbes != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "unknown",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}
