package fleet

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// Harness runs an in-process replica fleet for tests and the chaos suite:
// each replica is a real HTTP server on a loopback port whose port survives
// "process death". Kill severs every live connection and makes new requests
// die with a connection reset (no HTTP response — exactly what a killed
// process looks like at L7), and discards the replica's handler so its
// in-memory state (model cache, session pools, staged telemetry) is lost.
// Revive builds a fresh handler from the factory — a restarted process with
// a cold cache on the same address.
type Harness struct {
	replicas []*HarnessReplica
}

// HarnessReplica is one killable in-process backend.
type HarnessReplica struct {
	ln      net.Listener
	srv     *http.Server
	alive   atomic.Bool
	handler atomic.Value // http.Handler
	factory func() http.Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	kills   atomic.Int64
	revives atomic.Int64
}

// NewHarness starts n replicas, each serving factory(i)'s handler. The
// factory runs once per replica per (re)start — it must return fresh state
// every call (Revive reuses it to model a process restart).
func NewHarness(n int, factory func(i int) http.Handler) (*Harness, error) {
	h := &Harness{}
	for i := 0; i < n; i++ {
		i := i
		rep, err := newHarnessReplica(func() http.Handler { return factory(i) })
		if err != nil {
			h.Close()
			return nil, err
		}
		h.replicas = append(h.replicas, rep)
	}
	return h, nil
}

func newHarnessReplica(factory func() http.Handler) (*HarnessReplica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rep := &HarnessReplica{ln: ln, factory: factory, conns: make(map[net.Conn]struct{})}
	rep.handler.Store(factory())
	rep.alive.Store(true)
	rep.srv = &http.Server{
		Handler: http.HandlerFunc(rep.serve),
		ConnState: func(c net.Conn, st http.ConnState) {
			rep.mu.Lock()
			switch st {
			case http.StateNew:
				rep.conns[c] = struct{}{}
			case http.StateClosed, http.StateHijacked:
				delete(rep.conns, c)
			}
			rep.mu.Unlock()
		},
	}
	go func() { _ = rep.srv.Serve(ln) }()
	return rep, nil
}

// serve dispatches to the live handler, or kills the connection outright
// while the replica is "dead": the client sees a reset/EOF, never an HTTP
// status — the failure mode of a killed process, which the router must
// classify as a transport error and fail over.
func (rep *HarnessReplica) serve(w http.ResponseWriter, r *http.Request) {
	if !rep.alive.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	rep.handler.Load().(http.Handler).ServeHTTP(w, r)
}

// Addr is the replica's "host:port" — stable across Kill/Revive, exactly
// what the router's ring holds.
func (rep *HarnessReplica) Addr() string { return rep.ln.Addr().String() }

// Alive reports whether the replica is serving.
func (rep *HarnessReplica) Alive() bool { return rep.alive.Load() }

// Kill simulates abrupt process death: in-flight and future connections are
// severed and the handler (with all its in-memory state) is dropped. The
// port keeps listening so the address stays valid for Revive.
func (rep *HarnessReplica) Kill() {
	if !rep.alive.Swap(false) {
		return
	}
	rep.kills.Add(1)
	rep.mu.Lock()
	for c := range rep.conns {
		c.Close()
	}
	rep.mu.Unlock()
}

// Revive restarts the "process": a fresh handler from the factory, cold
// caches, same address.
func (rep *HarnessReplica) Revive() {
	if rep.alive.Load() {
		return
	}
	rep.revives.Add(1)
	rep.handler.Store(rep.factory())
	rep.alive.Store(true)
}

// Replica returns replica i.
func (h *Harness) Replica(i int) *HarnessReplica { return h.replicas[i] }

// Addrs lists every replica address in index order.
func (h *Harness) Addrs() []string {
	out := make([]string, len(h.replicas))
	for i, rep := range h.replicas {
		out[i] = rep.Addr()
	}
	return out
}

// Kill severs replica i (idempotent).
func (h *Harness) Kill(i int) { h.replicas[i].Kill() }

// Revive restarts replica i (idempotent).
func (h *Harness) Revive(i int) { h.replicas[i].Revive() }

// Close shuts every replica down.
func (h *Harness) Close() {
	for _, rep := range h.replicas {
		if rep == nil {
			continue
		}
		rep.srv.Close()
		rep.ln.Close()
	}
}

// String aids test logging.
func (h *Harness) String() string {
	return fmt.Sprintf("harness(%d replicas)", len(h.replicas))
}
