package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// BenchmarkFleetRingOwner measures one bounded-load ring lookup — the pure
// routing overhead the router adds before any network work.
func BenchmarkFleetRingOwner(b *testing.B) {
	replicas := make([]string, 8)
	for i := range replicas {
		replicas[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	r := NewRing(replicas, 0)
	keys := ringKeys(1024)
	all := func(string) bool { return true }
	load := func(string) int { return 4 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner, _ := r.OwnerBounded(keys[i%len(keys)], 1.25, all, load)
		if owner == "" {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkFleetProxyOverhead measures a full proxied round trip against
// no-op backends: HTTP in, route-key derivation, upstream call, response
// copy. The backend does no solving, so the number is the router's wire
// overhead per request.
func BenchmarkFleetProxyOverhead(b *testing.B) {
	h, err := NewHarness(3, func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"ok":true}`))
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rt, err := New(Config{Replicas: h.Addrs(), ProbeInterval: time.Hour, HedgeDelay: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := front.Client()
	body := []byte(`{"model":{"floorplan":"grid:3x3"},"power":{"c0_0":10}}`)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(front.URL+"/v1/steady", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := resp.Body.Read(make([]byte, 64)); err != nil && err.Error() != "EOF" {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkFleetFailoverWindow measures request latency while the primary
// owner is dead: the first requests pay the transport-error + failover
// price, then the breaker ejects the corpse and requests go straight to the
// successor. Reports the p99 of the observed window as failover-p99-ns.
func BenchmarkFleetFailoverWindow(b *testing.B) {
	h, err := NewHarness(2, func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"ok":true}`))
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rt, err := New(Config{
		Replicas:      h.Addrs(),
		ProbeInterval: time.Hour,
		Breaker:       BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour},
		Retry:         RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond},
		HedgeDelay:    -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := front.Client()
	body := []byte(`{"model":{"floorplan":"grid:3x3"},"power":{"c0_0":10}}`)

	// Kill the steady request's ring owner so every early request fails over.
	key := rt.routeKey(httptest.NewRequest("POST", "/v1/steady", nil), body)
	for i, addr := range h.Addrs() {
		if addr == rt.Ring().Owner(key) {
			h.Kill(i)
		}
	}

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resp, err := client.Post(front.URL+"/v1/steady", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		p99 := lat[len(lat)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds()), "failover-p99-ns")
	}
}
