package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the real route keys (hex fingerprints) but any stable
		// string works: FNV spreads them uniformly.
		keys[i] = fmt.Sprintf("fingerprint-%08x", i*2654435761)
	}
	return keys
}

// TestRingDeterministic: two rings over the same membership — regardless of
// list order — agree on every owner and on the full preference order. This
// is the contract the fleet's deterministic-reassignment story rests on.
func TestRingDeterministic(t *testing.T) {
	replicas := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070", "10.0.0.4:7070", "10.0.0.5:7070"}
	shuffled := []string{"10.0.0.4:7070", "10.0.0.1:7070", "10.0.0.5:7070", "10.0.0.3:7070", "10.0.0.2:7070"}
	r1 := NewRing(replicas, 0)
	r2 := NewRing(shuffled, 0)
	for _, key := range ringKeys(2000) {
		o1 := r1.Owners(key, 0)
		o2 := r2.Owners(key, 0)
		if len(o1) != len(replicas) || len(o2) != len(replicas) {
			t.Fatalf("Owners(%q) lengths: %d, %d, want %d", key, len(o1), len(o2), len(replicas))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("preference order diverges for %q at %d: %q vs %q", key, i, o1, o2)
			}
		}
		seen := map[string]bool{}
		for _, o := range o1 {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %q", key, o, o1)
			}
			seen[o] = true
		}
	}
}

// TestRingShareBalance: with DefaultVnodes the per-replica key share stays
// within a loose band around the fair 1/N share.
func TestRingShareBalance(t *testing.T) {
	replicas := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r := NewRing(replicas, 0)
	keys := ringKeys(20000)
	counts := map[string]int{}
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	fair := float64(len(keys)) / float64(len(replicas))
	for _, addr := range replicas {
		share := float64(counts[addr])
		if share < 0.4*fair || share > 1.8*fair {
			t.Errorf("replica %s owns %d keys, fair share %.0f (counts %v)", addr, counts[addr], fair, counts)
		}
	}
}

// TestRingMinimalMoves is the bounded-load consistent-hashing property test:
// when one replica leaves (goes unavailable), exactly its keys — roughly
// K/N of them — move, each to the key's next preferred replica, and every
// other key keeps its owner. When it rejoins, the assignment returns to the
// original exactly.
func TestRingMinimalMoves(t *testing.T) {
	replicas := []string{"r0:1", "r1:1", "r2:1", "r3:1", "r4:1"}
	r := NewRing(replicas, 0)
	keys := ringKeys(10000)
	all := func(string) bool { return true }

	base := make(map[string]string, len(keys))
	for _, key := range keys {
		owner, idx := r.OwnerBounded(key, 1.25, all, nil)
		if idx != 0 || owner != r.Owner(key) {
			t.Fatalf("unloaded OwnerBounded(%q) = (%s, %d), want affinity owner %s at 0", key, owner, idx, r.Owner(key))
		}
		base[key] = owner
	}

	for _, dead := range replicas {
		without := func(a string) bool { return a != dead }
		moved := 0
		for _, key := range keys {
			owner, _ := r.OwnerBounded(key, 1.25, without, nil)
			if owner == dead {
				t.Fatalf("key %q assigned to unavailable replica %s", key, dead)
			}
			if base[key] != dead {
				if owner != base[key] {
					t.Fatalf("key %q moved %s -> %s though %s was not its owner (dead: %s)",
						key, base[key], owner, base[key], dead)
				}
				continue
			}
			moved++
			// The key must land on its next preferred live replica.
			want := ""
			for _, o := range r.Owners(key, 0) {
				if o != dead {
					want = o
					break
				}
			}
			if owner != want {
				t.Fatalf("key %q (owner %s died) moved to %s, want next preference %s", key, dead, owner, want)
			}
		}
		fair := len(keys) / len(replicas)
		if moved < fair/3 || moved > 3*fair {
			t.Errorf("losing %s moved %d keys, expected ~K/N = %d", dead, moved, fair)
		}
		// Rejoin: assignment returns to the original, key for key.
		for _, key := range keys {
			owner, _ := r.OwnerBounded(key, 1.25, all, nil)
			if owner != base[key] {
				t.Fatalf("after %s rejoined, key %q owned by %s, want %s", dead, key, owner, base[key])
			}
		}
	}
}

// TestRingBoundedLoadSkipsHotReplica: a replica over its bounded-load
// capacity c·ceil((total+1)/alive) is skipped in favor of the key's next
// preference.
func TestRingBoundedLoadSkipsHotReplica(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	key := "some-model-fingerprint"
	owners := r.Owners(key, 0)
	all := func(string) bool { return true }

	// Load 10 on the affinity owner, 0 elsewhere: total 10, alive 3,
	// capacity ceil(1.25*11/3) = 5, so the hot owner is skipped.
	load := func(a string) int {
		if a == owners[0] {
			return 10
		}
		return 0
	}
	got, idx := r.OwnerBounded(key, 1.25, all, load)
	if got != owners[1] || idx != 1 {
		t.Fatalf("hot owner not skipped: got (%s, %d), want (%s, 1)", got, idx, owners[1])
	}

	// Balanced load keeps affinity: 4 each, capacity ceil(1.25*13/3) = 6 > 4.
	balanced := func(string) int { return 4 }
	got, idx = r.OwnerBounded(key, 1.25, all, balanced)
	if got != owners[0] || idx != 0 {
		t.Fatalf("balanced load moved the key: got (%s, %d), want (%s, 0)", got, idx, owners[0])
	}

	// No replica available: no owner.
	none := func(string) bool { return false }
	if got, idx := r.OwnerBounded(key, 1.25, none, nil); got != "" || idx != -1 {
		t.Fatalf("all-dead ring returned (%q, %d), want (\"\", -1)", got, idx)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if o := r.Owner("k"); o != "" {
		t.Fatalf("empty ring Owner = %q, want empty", o)
	}
	if o := r.Owners("k", 3); o != nil {
		t.Fatalf("empty ring Owners = %v, want nil", o)
	}
	if got, idx := r.OwnerBounded("k", 1.25, nil, nil); got != "" || idx != -1 {
		t.Fatalf("empty ring OwnerBounded = (%q, %d)", got, idx)
	}
}
