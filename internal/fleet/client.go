package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy tunes the resilient HTTP client. Zero fields take defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, the first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 50 ms); attempt k
	// sleeps a full-jitter draw from [0, min(MaxBackoff, BaseBackoff·2^k)].
	BaseBackoff time.Duration
	// MaxBackoff caps the schedule (default 2 s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps an honored Retry-After header (default 5 s): a
	// server asking for more than this waits past the point where retrying
	// here is useful, so the client sleeps the cap instead.
	MaxRetryAfter time.Duration
}

func (p RetryPolicy) defaulted() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 5 * time.Second
	}
	return p
}

// backoff returns the sleep before retry number attempt (1-based), as a
// full-jitter draw: uniform in [0, min(MaxBackoff, Base·2^(attempt-1))].
// Full jitter decorrelates a thundering herd of shed clients — with N
// clients retrying a 429, fixed exponential backoff re-synchronizes them
// into the same instant that shed them.
func (p RetryPolicy) backoff(attempt int, randFloat func() float64) time.Duration {
	ceil := p.BaseBackoff << uint(attempt-1)
	if ceil > p.MaxBackoff || ceil <= 0 {
		ceil = p.MaxBackoff
	}
	return time.Duration(randFloat() * float64(ceil))
}

// RetryAfter extracts a response's Retry-After delay (whole seconds per the
// service convention; docs/api.md). ok is false when the header is absent or
// unparsable.
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Retryable classifies a response status: 429 and 503 are the service's
// shed/unavailable answers (always sent with Retry-After), 502 is a proxy
// hop failing, 504 while *queued remotely* is a server-side deadline — the
// client's own deadline governs whether another try is worthwhile, so it is
// retryable here and the context stops the loop when the budget is gone.
func Retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryClient wraps an http.Client with capped exponential backoff + full
// jitter that honors the service's Retry-After convention. It retries
// transport errors and Retryable statuses up to MaxAttempts, sleeping
// max(jittered backoff, capped Retry-After) between tries, and surfaces a
// clear final error naming the attempt count and last cause. Safe for
// concurrent use.
type RetryClient struct {
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Policy tunes attempts and backoff.
	Policy RetryPolicy
	// OnRetry, when set, observes each retry before its sleep (stats,
	// logging). attempt is the 1-based attempt that just failed.
	OnRetry func(attempt int, sleep time.Duration, cause string)

	// Injectable randomness and sleeping for deterministic tests.
	randFloat func() float64
	sleep     func(ctx context.Context, d time.Duration) error

	randMu sync.Mutex
}

func (c *RetryClient) rand() float64 {
	c.randMu.Lock()
	defer c.randMu.Unlock()
	if c.randFloat == nil {
		return rand.Float64()
	}
	return c.randFloat()
}

func (c *RetryClient) doSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs build → request → response with retries. build is called once per
// attempt (http.Request bodies are single-use); it receives the context the
// request must carry. A non-retryable response returns as-is with its body
// readable. A retryable response has its body drained and closed before the
// next attempt. When attempts run out the last retryable response is
// returned alongside a descriptive error (the caller owns the body); pure
// transport failures return a nil response.
func (c *RetryClient) Do(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (*http.Response, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	policy := c.Policy.defaulted()
	var lastCause string
	for attempt := 1; ; attempt++ {
		req, err := build(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			lastCause = err.Error()
		case !Retryable(resp.StatusCode):
			return resp, nil
		default:
			lastCause = "status " + strconv.Itoa(resp.StatusCode)
			if ra, ok := RetryAfter(resp); ok {
				if ra > policy.MaxRetryAfter {
					ra = policy.MaxRetryAfter
				}
				retryAfter = ra
				lastCause += " (Retry-After " + ra.String() + ")"
			}
		}
		if attempt >= policy.MaxAttempts {
			if resp != nil {
				return resp, fmt.Errorf("gave up after %d attempts: last %s", attempt, lastCause)
			}
			return nil, fmt.Errorf("gave up after %d attempts: last %s", attempt, lastCause)
		}
		if resp != nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		sleep := policy.backoff(attempt, c.rand)
		if retryAfter > sleep {
			sleep = retryAfter
		}
		if c.OnRetry != nil {
			c.OnRetry(attempt, sleep, lastCause)
		}
		if err := c.doSleep(ctx, sleep); err != nil {
			return nil, fmt.Errorf("after %d attempts (last %s): %w", attempt, lastCause, err)
		}
	}
}
