package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tstore"
)

func tempFile(t *testing.T, f *FS) tstore.File {
	t.Helper()
	file, err := f.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })
	return file
}

func TestAlwaysErrorRule(t *testing.T) {
	f := New(nil, 1, Rule{Op: OpWriteAt, Mode: ModeError, P: 1})
	file := tempFile(t, f)
	if _, err := file.WriteAt([]byte("abcd"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Non-matched ops are untouched.
	if _, err := file.Write([]byte("abcd")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := f.Injections()["writeat/error"]; got != 1 {
		t.Fatalf("injection count %d, want 1 (%v)", got, f.Injections())
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	f := New(nil, 7, Rule{Op: OpWriteAt, Mode: ModeShortWrite, P: 1})
	file := tempFile(t, f)
	n, err := file.WriteAt([]byte("abcdefgh"), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("short write kept %d bytes, want 4", n)
	}
	buf := make([]byte, 4)
	if _, err := file.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcd" {
		t.Fatalf("on-disk prefix %q", buf)
	}
}

func TestDiskFullEpisode(t *testing.T) {
	f := New(nil, 1)
	file := tempFile(t, f)
	f.SetDiskFull(true)
	if _, err := file.WriteAt([]byte("x"), 0); !errors.Is(err, ErrDiskFull) || !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-full err = %v", err)
	}
	if _, err := file.Write([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("disk-full write err = %v", err)
	}
	f.SetDiskFull(false)
	if _, err := file.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("after episode: %v", err)
	}
	if got := f.Injections()["writeat/error"]; got != 1 {
		t.Fatalf("writeat injections %d, want 1", got)
	}
}

func TestDeterministicSeed(t *testing.T) {
	run := func() []string {
		f := New(nil, 42, Rule{Op: OpWriteAt, Mode: ModeError, P: 0.5})
		file := tempFile(t, f)
		var outcomes []string
		for i := 0; i < 64; i++ {
			if _, err := file.WriteAt([]byte("row"), int64(3*i)); err != nil {
				outcomes = append(outcomes, "fail")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %s vs %s — seed not deterministic", i, a[i], b[i])
		}
		if a[i] == "fail" {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 rule tripped %d/%d times", fails, len(a))
	}
}

func TestDelayRule(t *testing.T) {
	f := New(nil, 1, Rule{Op: OpReadAt, Mode: ModeDelay, P: 1, Delay: 20 * time.Millisecond})
	file := tempFile(t, f)
	if _, err := file.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := file.ReadAt(buf, 0); err != nil {
		t.Fatalf("delay must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("read returned in %v, want ≥ injected 20ms delay", d)
	}
	if got := f.Injections()["readat/delay"]; got != 1 {
		t.Fatalf("delay injections %d", got)
	}
}

func TestCustomErrorAndOpenInjection(t *testing.T) {
	boom := errors.New("boom")
	f := New(nil, 1, Rule{Op: OpOpen, Mode: ModeError, P: 1, Err: boom})
	_, err := f.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if f.TotalInjections() != 1 {
		t.Fatalf("total injections %d", f.TotalInjections())
	}
}

func TestBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("P=2 rule accepted")
		}
	}()
	New(nil, 1, Rule{Op: OpWrite, P: 2})
}

// The shim must satisfy tstore's FS seam end-to-end: a store opened over a
// fault-free shim behaves exactly like one on the real filesystem.
func TestPassThroughStore(t *testing.T) {
	f := New(nil, 1)
	st, err := tstore.Open(t.TempDir(), tstore.Options{FlushRows: 4, FS: f})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
