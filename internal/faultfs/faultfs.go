// Package faultfs is a fault-injecting filesystem shim for the telemetry
// store's chaos suite (DESIGN.md §12). It wraps any tstore.FS and injects
// errors, short writes and latency per operation with configured
// probabilities, driven by a deterministic seed so a failing chaos run
// replays exactly. Disk-full episodes can be toggled at runtime to model an
// outage that begins and ends while writers are live. Every injection is
// counted per (op, mode), so tests can reconcile observed failures against
// what the shim actually injected.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tstore"
)

// Op names one filesystem operation class for rule matching.
type Op string

const (
	OpMkdirAll Op = "mkdirall"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpOpen     Op = "open"
	OpRemove   Op = "remove"
	OpWrite    Op = "write"   // File.Write (sequential appends, e.g. headers)
	OpWriteAt  Op = "writeat" // File.WriteAt (segment flushes)
	OpReadAt   Op = "readat"  // File.ReadAt (query-path segment reads)
	OpTruncate Op = "truncate"
	OpClose    Op = "close"
)

// Mode selects what an injected fault does.
type Mode int

const (
	// ModeError fails the operation with the rule's error without touching
	// the underlying filesystem.
	ModeError Mode = iota
	// ModeShortWrite performs roughly half the write against the real file,
	// then fails with the rule's error — the torn-tail generator. Only
	// meaningful on OpWrite/OpWriteAt; on other ops it behaves like
	// ModeError.
	ModeShortWrite
	// ModeDelay sleeps for the rule's Delay, then lets the operation
	// proceed normally (slow-disk injection, not a failure).
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeShortWrite:
		return "short-write"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ErrInjected is the default injected failure; every error faultfs injects
// wraps it (or ErrDiskFull), so tests can assert fault provenance with
// errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrDiskFull is returned by every write while a disk-full episode is
// active (SetDiskFull(true)).
var ErrDiskFull = fmt.Errorf("%w: no space left on device", ErrInjected)

// Rule injects one fault class: operations matching Op trip with
// probability P per call.
type Rule struct {
	Op   Op
	Mode Mode
	// P is the per-call trip probability in [0, 1].
	P float64
	// Err overrides the injected error (default ErrInjected). Ignored by
	// ModeDelay.
	Err error
	// Delay is the sleep for ModeDelay rules.
	Delay time.Duration
}

func (r Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// FS wraps a base filesystem with fault injection. Safe for concurrent use.
type FS struct {
	base tstore.FS

	mu    sync.Mutex // guards rng
	rng   *rand.Rand
	rules []Rule

	diskFull atomic.Bool

	cmu    sync.Mutex
	counts map[string]int64 // "<op>/<mode>" → injections
}

// New wraps base (nil = the real filesystem) with the given rules,
// deterministically seeded.
func New(base tstore.FS, seed int64, rules ...Rule) *FS {
	if base == nil {
		base = tstore.OSFS()
	}
	for _, r := range rules {
		if r.P < 0 || r.P > 1 {
			panic(fmt.Sprintf("faultfs: rule %s/%s probability %v outside [0,1]", r.Op, r.Mode, r.P))
		}
	}
	return &FS{
		base:   base,
		rng:    rand.New(rand.NewSource(seed)),
		rules:  rules,
		counts: make(map[string]int64),
	}
}

// SetDiskFull starts (true) or ends (false) a disk-full episode: while
// active, every write fails with ErrDiskFull before touching the base
// filesystem.
func (f *FS) SetDiskFull(v bool) { f.diskFull.Store(v) }

// Injections snapshots the per-(op, mode) injection counters, keyed
// "<op>/<mode>".
func (f *FS) Injections() map[string]int64 {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	out := make(map[string]int64, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// TotalInjections sums every injection counter.
func (f *FS) TotalInjections() int64 {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	var n int64
	for _, v := range f.counts {
		n += v
	}
	return n
}

func (f *FS) count(op Op, mode Mode) {
	f.cmu.Lock()
	f.counts[string(op)+"/"+mode.String()]++
	f.cmu.Unlock()
}

// trip returns the first rule for op that fires this call, if any. One
// rng draw per matching rule keeps the stream deterministic for a fixed
// seed and call sequence.
func (f *FS) trip(op Op) (Rule, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if f.rng.Float64() < r.P {
			return r, true
		}
	}
	return Rule{}, false
}

// inject runs the pre-operation injection shared by non-write ops: an error
// rule fails the op, a delay rule sleeps. It reports whether the op should
// fail and with what error.
func (f *FS) inject(op Op) error {
	r, ok := f.trip(op)
	if !ok {
		return nil
	}
	if r.Mode == ModeDelay {
		f.count(op, ModeDelay)
		time.Sleep(r.Delay)
		return nil
	}
	f.count(op, r.Mode)
	return fmt.Errorf("faultfs: %s: %w", op, r.err())
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.inject(OpMkdirAll); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if err := f.inject(OpReadDir); err != nil {
		return nil, err
	}
	return f.base.ReadDir(dir)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	if err := f.inject(OpReadFile); err != nil {
		return nil, err
	}
	return f.base.ReadFile(path)
}

func (f *FS) Remove(path string) error {
	if err := f.inject(OpRemove); err != nil {
		return err
	}
	return f.base.Remove(path)
}

func (f *FS) OpenFile(path string, flag int, perm fs.FileMode) (tstore.File, error) {
	if err := f.inject(OpOpen); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// faultFile wraps one open file with the shim's write/read injection.
type faultFile struct {
	fs *FS
	f  tstore.File
}

// writeFault decides the fate of a write of n bytes: proceed (keep == n,
// err == nil), fail outright (keep == 0), or short-write (0 < keep < n).
func (ff *faultFile) writeFault(op Op, n int) (keep int, err error) {
	if ff.fs.diskFull.Load() {
		ff.fs.count(op, ModeError)
		return 0, fmt.Errorf("faultfs: %s: %w", op, ErrDiskFull)
	}
	r, ok := ff.fs.trip(op)
	if !ok {
		return n, nil
	}
	switch r.Mode {
	case ModeDelay:
		ff.fs.count(op, ModeDelay)
		time.Sleep(r.Delay)
		return n, nil
	case ModeShortWrite:
		ff.fs.count(op, ModeShortWrite)
		return n / 2, fmt.Errorf("faultfs: %s short write: %w", op, r.err())
	default:
		ff.fs.count(op, ModeError)
		return 0, fmt.Errorf("faultfs: %s: %w", op, r.err())
	}
}

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, ferr := ff.writeFault(OpWrite, len(p))
	if ferr != nil && keep == 0 {
		return 0, ferr
	}
	n, err := ff.f.Write(p[:keep])
	if err != nil {
		return n, err
	}
	return n, ferr
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	keep, ferr := ff.writeFault(OpWriteAt, len(p))
	if ferr != nil && keep == 0 {
		return 0, ferr
	}
	n, err := ff.f.WriteAt(p[:keep], off)
	if err != nil {
		return n, err
	}
	return n, ferr
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.inject(OpReadAt); err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.inject(OpTruncate); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error {
	if err := ff.fs.inject(OpClose); err != nil {
		// The underlying file still closes so chaos runs never leak
		// descriptors; the injected error models fsync-at-close failures.
		_ = ff.f.Close()
		return err
	}
	return ff.f.Close()
}
