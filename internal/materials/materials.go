// Package materials holds the solid and fluid thermal properties and the
// convection correlations used throughout the reproduction. The correlations
// implement equations (1)-(4), (7) and (8) of Huang et al. (ISPASS 2009):
// laminar forced convection over a smooth flat plate, the thermal
// boundary-layer thickness, and the resulting convection resistances and
// capacitances of the IR-transparent oil flow.
package materials

import (
	"fmt"
	"math"
)

// Solid describes an isotropic solid material.
type Solid struct {
	Name string
	// Conductivity is the thermal conductivity k in W/(m·K).
	Conductivity float64
	// VolHeatCap is the volumetric heat capacity ρ·c_p in J/(m³·K).
	VolHeatCap float64
}

// Standard solids. The silicon and copper values match those used by the
// HotSpot distribution (k_Si = 100 W/mK at operating temperature, which is
// what reproduces the paper's quoted R_th,Si = 0.0125 K/W for a
// 20×20×0.5 mm die).
var (
	Silicon = Solid{Name: "silicon", Conductivity: 100, VolHeatCap: 1.75e6}
	Copper  = Solid{Name: "copper", Conductivity: 400, VolHeatCap: 3.55e6}
	// TIM is the thermal interface material between die and spreader.
	TIM = Solid{Name: "tim", Conductivity: 4, VolHeatCap: 4.0e6}
	// Interconnect is the effective property of the on-chip metal/dielectric
	// stack (first element of the secondary heat-transfer path).
	Interconnect = Solid{Name: "interconnect", Conductivity: 2.25, VolHeatCap: 2.0e6}
	// C4Underfill is the flip-chip bump array plus underfill epoxy.
	C4Underfill = Solid{Name: "c4-underfill", Conductivity: 0.8, VolHeatCap: 2.2e6}
	// Substrate is an organic flip-chip package substrate.
	Substrate = Solid{Name: "substrate", Conductivity: 15, VolHeatCap: 1.9e6}
	// SolderBalls is the effective property of the BGA ball field.
	SolderBalls = Solid{Name: "solder", Conductivity: 5, VolHeatCap: 1.6e6}
	// PCB is an FR4 printed-circuit board with copper planes.
	PCB = Solid{Name: "pcb", Conductivity: 8, VolHeatCap: 1.8e6}
)

// Fluid describes a convective coolant.
type Fluid struct {
	Name string
	// Conductivity k in W/(m·K).
	Conductivity float64
	// Density ρ in kg/m³.
	Density float64
	// SpecificHeat c_p in J/(kg·K).
	SpecificHeat float64
	// KinViscosity ν in m²/s.
	KinViscosity float64
}

// Prandtl returns the Prandtl number Pr = ν·ρ·c_p / k.
func (f Fluid) Prandtl() float64 {
	return f.KinViscosity * f.Density * f.SpecificHeat / f.Conductivity
}

// Reynolds returns the Reynolds number Re_x = V·x/ν at position x along the
// flow for free-stream velocity v.
func (f Fluid) Reynolds(v, x float64) float64 { return v * x / f.KinViscosity }

// MineralOil is the IR-transparent oil used for infrared thermal imaging
// (Mesa-Martinez et al., ISCA 2007). The kinematic viscosity is chosen so
// that a 10 m/s flow over a 20 mm die yields the paper's quoted overall
// convection resistance R_conv ≈ 1.042 K/W (§4.1.2).
var MineralOil = Fluid{
	Name:         "mineral-oil",
	Conductivity: 0.13,
	Density:      870,
	SpecificHeat: 1900,
	KinViscosity: 4.42e-5,
}

// Air at roughly 300 K; used for the negligible secondary-path convection of
// an AIR-SINK system (natural convection inside the case).
var Air = Fluid{
	Name:         "air",
	Conductivity: 0.026,
	Density:      1.16,
	SpecificHeat: 1007,
	KinViscosity: 1.6e-5,
}

// AmbientK is the default ambient temperature used by the models (Kelvin).
// The paper's Fig. 12 experiments use 45 °C; earlier experiments use a
// generic ambient around this value.
const AmbientK = 318.15 // 45 °C

// KelvinOffset converts between Celsius and Kelvin.
const KelvinOffset = 273.15

// CToK converts Celsius to Kelvin.
func CToK(c float64) float64 { return c + KelvinOffset }

// KToC converts Kelvin to Celsius.
func KToC(k float64) float64 { return k - KelvinOffset }

// LaminarFlow captures a laminar flat-plate flow configuration of a given
// fluid over a plate of length plateLen (measured along the flow) at
// velocity v.
type LaminarFlow struct {
	Fluid    Fluid
	Velocity float64 // free-stream velocity V, m/s
	PlateLen float64 // plate length L along the flow, m
}

// Validate reports configuration errors and whether the flow is outside the
// laminar flat-plate regime (Re_L > 5·10^5 is the usual transition
// criterion; the paper's setups stay well inside it).
func (lf LaminarFlow) Validate() error {
	if lf.Velocity <= 0 {
		return fmt.Errorf("materials: non-positive flow velocity %g", lf.Velocity)
	}
	if lf.PlateLen <= 0 {
		return fmt.Errorf("materials: non-positive plate length %g", lf.PlateLen)
	}
	if lf.Fluid.KinViscosity <= 0 || lf.Fluid.Conductivity <= 0 {
		return fmt.Errorf("materials: fluid %q has non-positive properties", lf.Fluid.Name)
	}
	if re := lf.Fluid.Reynolds(lf.Velocity, lf.PlateLen); re > 5e5 {
		return fmt.Errorf("materials: Re_L = %.3g exceeds laminar transition (5e5)", re)
	}
	return nil
}

// AvgHeatTransferCoeff returns the equivalent overall heat transfer
// coefficient h_L for laminar flow over a smooth flat surface
// (paper eq. 2):
//
//	h_L = 0.664 · (k/L) · Re_L^0.5 · Pr^(1/3)
func (lf LaminarFlow) AvgHeatTransferCoeff() float64 {
	re := lf.Fluid.Reynolds(lf.Velocity, lf.PlateLen)
	pr := lf.Fluid.Prandtl()
	return 0.664 * lf.Fluid.Conductivity / lf.PlateLen * math.Sqrt(re) * math.Cbrt(pr)
}

// LocalHeatTransferCoeff returns the local coefficient h(x) at distance x
// from the leading edge (paper eq. 8):
//
//	h(x) = 0.332 · (k/x) · Re_x^0.5 · Pr^(1/3)
//
// h(x) diverges at the leading edge; callers should use SpanHeatTransferCoeff
// to average over a finite extent instead of sampling x → 0.
func (lf LaminarFlow) LocalHeatTransferCoeff(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	re := lf.Fluid.Reynolds(lf.Velocity, x)
	pr := lf.Fluid.Prandtl()
	return 0.332 * lf.Fluid.Conductivity / x * math.Sqrt(re) * math.Cbrt(pr)
}

// SpanHeatTransferCoeff returns the average of h(x) over the span
// [x1, x2] measured from the leading edge:
//
//	h̄ = (1/(x2−x1)) ∫ h(x) dx
//	  = 0.664 · k · Pr^(1/3) · sqrt(V/ν) · (√x2 − √x1)/(x2 − x1)
//
// It is finite even when x1 = 0 and reduces to AvgHeatTransferCoeff for the
// full plate [0, L].
func (lf LaminarFlow) SpanHeatTransferCoeff(x1, x2 float64) float64 {
	if x2 <= x1 {
		panic(fmt.Sprintf("materials: invalid span [%g, %g]", x1, x2))
	}
	if x1 < 0 {
		x1 = 0
	}
	pr := lf.Fluid.Prandtl()
	c := 0.664 * lf.Fluid.Conductivity * math.Cbrt(pr) * math.Sqrt(lf.Velocity/lf.Fluid.KinViscosity)
	return c * (math.Sqrt(x2) - math.Sqrt(x1)) / (x2 - x1)
}

// ConvectionResistance returns the overall convection thermal resistance at
// the fluid-solid boundary for wetted area a (paper eq. 1):
//
//	R_conv = 1 / (h_L · A)
func (lf LaminarFlow) ConvectionResistance(a float64) float64 {
	return 1 / (lf.AvgHeatTransferCoeff() * a)
}

// BoundaryLayerThickness returns the thermal boundary-layer thickness δt at
// the end of the plate (paper eq. 4):
//
//	δt = 4.91·L / (Pr^(1/3) · sqrt(Re_L))
func (lf LaminarFlow) BoundaryLayerThickness() float64 {
	re := lf.Fluid.Reynolds(lf.Velocity, lf.PlateLen)
	pr := lf.Fluid.Prandtl()
	return 4.91 * lf.PlateLen / (math.Cbrt(pr) * math.Sqrt(re))
}

// ConvectionCapacitance returns the overall effective thermal capacitance of
// the oil boundary layer over wetted area a (paper eq. 3):
//
//	C_conv = ρ · c_p · A · δt
func (lf LaminarFlow) ConvectionCapacitance(a float64) float64 {
	return lf.Fluid.Density * lf.Fluid.SpecificHeat * a * lf.BoundaryLayerThickness()
}

// VerticalResistance returns the 1-D conduction resistance of a solid slab
// of the given thickness and cross-sectional area: R = t/(k·A).
func VerticalResistance(s Solid, thickness, area float64) float64 {
	if thickness <= 0 || area <= 0 {
		panic(fmt.Sprintf("materials: invalid slab %g m × %g m²", thickness, area))
	}
	return thickness / (s.Conductivity * area)
}

// SlabCapacitance returns the lumped thermal capacitance of a solid slab:
// C = ρ·c_p · t · A.
func SlabCapacitance(s Solid, thickness, area float64) float64 {
	if thickness <= 0 || area <= 0 {
		panic(fmt.Sprintf("materials: invalid slab %g m × %g m²", thickness, area))
	}
	return s.VolHeatCap * thickness * area
}
