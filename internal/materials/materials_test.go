package materials

import (
	"math"
	"testing"
	"testing/quick"
)

// The paper's validation setup: 10 m/s mineral oil over a 20 mm die.
func paperFlow() LaminarFlow {
	return LaminarFlow{Fluid: MineralOil, Velocity: 10, PlateLen: 0.020}
}

func TestPaperRconvAbout1KperW(t *testing.T) {
	// §3.2/§4.1.2: "The equivalent convection thermal resistance is about
	// 1.0K/W" (quoted precisely as 1.042 K/W later in the paper).
	lf := paperFlow()
	r := lf.ConvectionResistance(0.020 * 0.020)
	if math.Abs(r-1.042) > 0.03 {
		t.Fatalf("R_conv = %.4f K/W, want ≈ 1.042", r)
	}
}

func TestPaperBoundaryLayerAbout100Microns(t *testing.T) {
	// §4.1.2: "about 100 µm thick for a 10 m/s oil flow". Our property set
	// gives the same order of magnitude.
	d := paperFlow().BoundaryLayerThickness()
	if d < 50e-6 || d > 400e-6 {
		t.Fatalf("δt = %.3g m, want O(100 µm)", d)
	}
}

func TestSiliconVerticalResistanceMatchesPaper(t *testing.T) {
	// §4.1.2 quotes R_th,Si = 0.0125 K/W for the 20×20×0.5 mm die.
	r := VerticalResistance(Silicon, 0.5e-3, 0.020*0.020)
	if math.Abs(r-0.0125) > 1e-6 {
		t.Fatalf("R_th,Si = %g, want 0.0125", r)
	}
}

func TestOilCapacitanceSmallerThanSilicon(t *testing.T) {
	// §4.1.2: the oil boundary layer's thermal capacitance is smaller even
	// than that of the silicon die.
	a := 0.020 * 0.020
	cOil := paperFlow().ConvectionCapacitance(a)
	cSi := SlabCapacitance(Silicon, 0.5e-3, a)
	if cOil >= cSi {
		t.Fatalf("C_oil = %g should be < C_si = %g", cOil, cSi)
	}
}

func TestHeatsinkCapacitanceRatio(t *testing.T) {
	// §4.1.2: heatsink thermal capacitance ~250× that of the die.
	cSink := SlabCapacitance(Copper, 6.9e-3, 0.060*0.060)
	cSi := SlabCapacitance(Silicon, 0.5e-3, 0.020*0.020)
	ratio := cSink / cSi
	if ratio < 150 || ratio > 400 {
		t.Fatalf("C_sink/C_si = %.0f, want ≈ 250", ratio)
	}
}

func TestAvgIsIntegralOfLocal(t *testing.T) {
	// eq. 2 must be the length-average of eq. 8. Numerical quadrature of
	// h(x) over (0, L] (excluding the integrable singularity) should agree.
	lf := paperFlow()
	n := 200000
	dx := lf.PlateLen / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) * dx
		sum += lf.LocalHeatTransferCoeff(x) * dx
	}
	avg := sum / lf.PlateLen
	hl := lf.AvgHeatTransferCoeff()
	if math.Abs(avg-hl)/hl > 1e-3 {
		t.Fatalf("∫h(x)dx/L = %g vs h_L = %g", avg, hl)
	}
}

func TestSpanCoeffFullPlateEqualsAvg(t *testing.T) {
	lf := paperFlow()
	got := lf.SpanHeatTransferCoeff(0, lf.PlateLen)
	want := lf.AvgHeatTransferCoeff()
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("span [0,L] = %g, h_L = %g", got, want)
	}
}

func TestSpanCoeffDecreasesDownstream(t *testing.T) {
	// The leading edge is cooled best (paper §4.2): h over an upstream span
	// exceeds h over an equal downstream span.
	lf := paperFlow()
	up := lf.SpanHeatTransferCoeff(0, 0.005)
	down := lf.SpanHeatTransferCoeff(0.015, 0.020)
	if up <= down {
		t.Fatalf("upstream h = %g should exceed downstream h = %g", up, down)
	}
}

// Property: the area-weighted composition of span coefficients over a
// partition of the plate equals the full-plate coefficient.
func TestSpanCoeffPartitionProperty(t *testing.T) {
	lf := paperFlow()
	f := func(cutRaw uint16) bool {
		frac := 0.01 + 0.98*float64(cutRaw)/65535.0
		cut := frac * lf.PlateLen
		h1 := lf.SpanHeatTransferCoeff(0, cut)
		h2 := lf.SpanHeatTransferCoeff(cut, lf.PlateLen)
		combined := (h1*cut + h2*(lf.PlateLen-cut)) / lf.PlateLen
		want := lf.AvgHeatTransferCoeff()
		return math.Abs(combined-want)/want < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCoeffLeadingEdgeInfinite(t *testing.T) {
	if !math.IsInf(paperFlow().LocalHeatTransferCoeff(0), 1) {
		t.Fatal("h(0) should be +Inf")
	}
}

func TestValidate(t *testing.T) {
	if err := paperFlow().Validate(); err != nil {
		t.Fatalf("paper flow should be valid: %v", err)
	}
	bad := LaminarFlow{Fluid: MineralOil, Velocity: -1, PlateLen: 0.02}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative velocity should fail validation")
	}
	// Water-like low viscosity at high speed goes turbulent.
	fast := LaminarFlow{Fluid: Fluid{Name: "thin", Conductivity: 0.6, Density: 1000, SpecificHeat: 4180, KinViscosity: 1e-6}, Velocity: 50, PlateLen: 0.02}
	if err := fast.Validate(); err == nil {
		t.Fatal("turbulent flow should fail validation")
	}
}

func TestPrandtlConsistency(t *testing.T) {
	pr := MineralOil.Prandtl()
	want := MineralOil.KinViscosity * MineralOil.Density * MineralOil.SpecificHeat / MineralOil.Conductivity
	if pr != want {
		t.Fatalf("Prandtl inconsistent")
	}
	if pr < 100 || pr > 1200 {
		t.Fatalf("mineral oil Pr = %g outside plausible range", pr)
	}
}

func TestTemperatureConversions(t *testing.T) {
	if CToK(45) != 318.15 {
		t.Fatalf("CToK(45) = %g", CToK(45))
	}
	if math.Abs(KToC(CToK(123.4))-123.4) > 1e-12 {
		t.Fatal("round trip failed")
	}
}

func TestHigherVelocityLowersResistance(t *testing.T) {
	a := 4e-4
	slow := LaminarFlow{Fluid: MineralOil, Velocity: 2, PlateLen: 0.02}
	fast := LaminarFlow{Fluid: MineralOil, Velocity: 20, PlateLen: 0.02}
	if slow.ConvectionResistance(a) <= fast.ConvectionResistance(a) {
		t.Fatal("faster flow must reduce R_conv")
	}
	// h ∝ sqrt(V): doubling V scales R by 1/sqrt(2).
	r1 := LaminarFlow{Fluid: MineralOil, Velocity: 5, PlateLen: 0.02}.ConvectionResistance(a)
	r2 := LaminarFlow{Fluid: MineralOil, Velocity: 10, PlateLen: 0.02}.ConvectionResistance(a)
	if math.Abs(r1/r2-math.Sqrt2) > 1e-9 {
		t.Fatalf("R scaling with velocity wrong: %g", r1/r2)
	}
}

func TestSlabHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero area")
		}
	}()
	VerticalResistance(Silicon, 1e-3, 0)
}
