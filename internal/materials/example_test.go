package materials_test

import (
	"fmt"

	"repro/internal/materials"
)

// ExampleLaminarFlow reproduces the numbers the paper quotes for its
// validation setup: 10 m/s mineral oil over a 20 mm die gives
// R_conv ≈ 1.042 K/W (eq. 1-2), and the die's own vertical conduction
// resistance is 0.0125 K/W — two orders of magnitude apart, which is the
// whole §4.1.2 time-constant story.
func ExampleLaminarFlow() {
	flow := materials.LaminarFlow{
		Fluid:    materials.MineralOil,
		Velocity: 10,    // m/s
		PlateLen: 0.020, // m, along the flow
	}
	area := 0.020 * 0.020
	fmt.Printf("R_conv = %.3f K/W\n", flow.ConvectionResistance(area))
	fmt.Printf("R_si   = %.4f K/W\n", materials.VerticalResistance(materials.Silicon, 0.5e-3, area))
	fmt.Printf("boundary layer ≈ %.0f µm\n", flow.BoundaryLayerThickness()*1e6)
	// Output:
	// R_conv = 1.043 K/W
	// R_si   = 0.0125 K/W
	// boundary layer ≈ 177 µm
}

// ExampleLaminarFlow_SpanHeatTransferCoeff shows the leading-edge advantage
// behind the paper's Fig. 11: the first quarter of the die along the flow is
// cooled roughly twice as well as the last quarter.
func ExampleLaminarFlow_SpanHeatTransferCoeff() {
	flow := materials.LaminarFlow{Fluid: materials.MineralOil, Velocity: 10, PlateLen: 0.020}
	lead := flow.SpanHeatTransferCoeff(0, 0.005)
	trail := flow.SpanHeatTransferCoeff(0.015, 0.020)
	fmt.Printf("leading/trailing h ratio = %.1f\n", lead/trail)
	// Output:
	// leading/trailing h ratio = 3.7
}
