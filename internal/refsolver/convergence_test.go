package refsolver

import (
	"math"
	"testing"
)

// TestGridRefinementConverges: refining the grid changes the center probe by
// progressively less (consistency of the discretization).
func TestGridRefinementConverges(t *testing.T) {
	probe := func(n int) float64 {
		s, err := New(paperCfg(n, n, 3))
		if err != nil {
			t.Fatal(err)
		}
		s.AddUniformPower(200)
		temp, err := s.Steady()
		if err != nil {
			t.Fatal(err)
		}
		return s.ProbeCenter(temp)
	}
	t8 := probe(8)
	t16 := probe(16)
	t24 := probe(24)
	d1 := math.Abs(t16 - t8)
	d2 := math.Abs(t24 - t16)
	if d2 > d1+1e-9 {
		t.Fatalf("refinement not converging: |16-8|=%g, |24-16|=%g", d1, d2)
	}
	// And the answer is stable to within a fraction of the rise.
	if d2 > 0.02*(t24-300) {
		t.Fatalf("grid sensitivity too high: %g on a rise of %g", d2, t24-300)
	}
}

// TestSymmetricSourceSymmetricField: a centered source under uniform h must
// give a left-right and top-bottom symmetric surface map.
func TestSymmetricSourceSymmetricField(t *testing.T) {
	s, err := New(paperCfg(20, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.AddRectPower(10, 0.009, 0.009, 0.002, 0.002)
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	m := s.TopMap(temp)
	nx, ny, _ := s.GridDims()
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx/2; ix++ {
			a := m[iy*nx+ix]
			b := m[iy*nx+(nx-1-ix)]
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("x symmetry broken at (%d,%d): %g vs %g", ix, iy, a, b)
			}
		}
	}
	for iy := 0; iy < ny/2; iy++ {
		for ix := 0; ix < nx; ix++ {
			a := m[iy*nx+ix]
			b := m[(ny-1-iy)*nx+ix]
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("y symmetry broken at (%d,%d): %g vs %g", ix, iy, a, b)
			}
		}
	}
}

// TestLocalHBreaksSymmetry: switching on h(x) must break exactly the x
// symmetry (flow direction) and keep the y symmetry.
func TestLocalHBreaksSymmetry(t *testing.T) {
	cfg := paperCfg(20, 20, 3)
	cfg.LocalH = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AddRectPower(10, 0.009, 0.009, 0.002, 0.002)
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	m := s.TopMap(temp)
	nx, ny, _ := s.GridDims()
	row := ny / 2
	var xAsym float64
	for ix := 0; ix < nx/2; ix++ {
		xAsym = math.Max(xAsym, math.Abs(m[row*nx+ix]-m[row*nx+(nx-1-ix)]))
	}
	if xAsym < 0.1 {
		t.Fatalf("local h should break x symmetry, asymmetry %g", xAsym)
	}
	col := nx / 2
	for iy := 0; iy < ny/2; iy++ {
		a := m[iy*nx+col]
		b := m[(ny-1-iy)*nx+col]
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("y symmetry should survive: %g vs %g", a, b)
		}
	}
}

// TestCompactVsReferenceGridAgreement: the compact model on a grid floorplan
// and the reference solver agree on an off-center source too (a stronger
// version of the Fig. 3 check).
func TestBEStepSizeRobust(t *testing.T) {
	// Backward Euler with a large step still lands near the same end state
	// as small steps for a smooth warmup (first-order accuracy sanity).
	s, err := New(paperCfg(10, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(100)
	a := s.AmbientField()
	b := s.AmbientField()
	if err := s.Transient(a, 2.0, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := s.Transient(b, 2.0, 0.2); err != nil {
		t.Fatal(err)
	}
	rise := s.ProbeCenter(a) - 300
	if d := math.Abs(s.ProbeCenter(a) - s.ProbeCenter(b)); d > 0.05*rise {
		t.Fatalf("BE step sensitivity too high: %g on rise %g", d, rise)
	}
}
