// Package refsolver is an independent fine-grid reference for validating the
// compact thermal model, playing the role ANSYS plays in the paper's §3.2.
// It discretizes the silicon die into a 3-D finite-volume grid, applies the
// same laminar flat-plate convection correlations at the oil-washed top
// surface (with the oil boundary layer's thermal capacitance), injects power
// in the active-device layer at the bottom of the die, and solves steady
// states with conjugate gradients and transients with backward Euler.
//
// The solver shares no code with the compact model beyond the material
// property tables: it assembles a sparse finite-volume operator rather than
// a floorplan-derived lumped network, so agreement between the two is a
// meaningful validation (paper Figs. 2 and 3).
package refsolver

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/linalg"
	"repro/internal/materials"
)

// Config describes the die, grid and oil flow.
type Config struct {
	// Die dimensions in meters.
	Width, Height, Thickness float64
	// Grid resolution. NZ is through-thickness.
	NX, NY, NZ int
	// AmbientK is the coolant free-stream temperature (K).
	AmbientK float64
	// Fluid and Velocity describe the oil flow over the top surface.
	Fluid    materials.Fluid
	Velocity float64
	// LocalH enables the position-dependent h(x) (flow along +x);
	// otherwise the plate-average h_L applies uniformly.
	LocalH bool
}

// Solver is an assembled finite-volume model. The conduction system lives
// behind the shared sparse solver backend (linalg.SparseOperator): steady
// states are one preconditioned CG solve, transients one warm-started solve
// per backward-Euler step against a cached shifted operator.
type Solver struct {
	cfg        Config
	nx, ny, nz int
	dx, dy, dz float64
	n          int // total unknowns: nx·ny·nz silicon + nx·ny oil
	op         *linalg.SparseOperator
	capVec     []float64
	power      []float64 // per-node injected power, W
	ambIn      []float64 // Dirichlet ambient inflow per node (g_amb·T_amb), W
	ws         linalg.Workspace

	// beOp caches the (C/dt + G) operator for the current step size.
	beStep float64
	beOp   linalg.Operator
}

// New assembles the solver.
func New(cfg Config) (*Solver, error) {
	if cfg.NX < 2 || cfg.NY < 2 || cfg.NZ < 1 {
		return nil, fmt.Errorf("refsolver: grid too small %dx%dx%d", cfg.NX, cfg.NY, cfg.NZ)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Thickness <= 0 {
		return nil, fmt.Errorf("refsolver: non-positive die dimensions")
	}
	if cfg.AmbientK == 0 {
		cfg.AmbientK = materials.AmbientK
	}
	if cfg.Fluid.Name == "" {
		cfg.Fluid = materials.MineralOil
	}
	if cfg.Velocity == 0 {
		cfg.Velocity = 10
	}
	flow := materials.LaminarFlow{Fluid: cfg.Fluid, Velocity: cfg.Velocity, PlateLen: cfg.Width}
	if err := flow.Validate(); err != nil {
		return nil, err
	}

	s := &Solver{cfg: cfg, nx: cfg.NX, ny: cfg.NY, nz: cfg.NZ}
	s.dx = cfg.Width / float64(cfg.NX)
	s.dy = cfg.Height / float64(cfg.NY)
	s.dz = cfg.Thickness / float64(cfg.NZ)
	nSi := s.nx * s.ny * s.nz
	s.n = nSi + s.nx*s.ny
	s.capVec = make([]float64, s.n)
	s.power = make([]float64, s.n)
	s.ambIn = make([]float64, s.n)

	k := materials.Silicon.Conductivity
	cellCap := materials.Silicon.VolHeatCap * s.dx * s.dy * s.dz
	var entries []linalg.Coord
	add := func(i, j int, g float64) {
		entries = append(entries,
			linalg.Coord{I: i, J: i, V: g},
			linalg.Coord{I: j, J: j, V: g},
			linalg.Coord{I: i, J: j, V: -g},
			linalg.Coord{I: j, J: i, V: -g})
	}
	gx := k * s.dy * s.dz / s.dx
	gy := k * s.dx * s.dz / s.dy
	gz := k * s.dx * s.dy / s.dz
	for iz := 0; iz < s.nz; iz++ {
		for iy := 0; iy < s.ny; iy++ {
			for ix := 0; ix < s.nx; ix++ {
				c := s.siIdx(ix, iy, iz)
				s.capVec[c] = cellCap
				if ix+1 < s.nx {
					add(c, s.siIdx(ix+1, iy, iz), gx)
				}
				if iy+1 < s.ny {
					add(c, s.siIdx(ix, iy+1, iz), gy)
				}
				if iz+1 < s.nz {
					add(c, s.siIdx(ix, iy, iz+1), gz)
				}
			}
		}
	}

	// Top surface (iz = nz-1): convection through a per-cell oil
	// boundary-layer node. Silicon cell center → surface is dz/2 of
	// conduction; then half the convection resistance to the oil node and
	// half from the oil node to the free stream.
	delta := flow.BoundaryLayerThickness()
	oilCellCap := cfg.Fluid.Density * cfg.Fluid.SpecificHeat * s.dx * s.dy * delta
	cellArea := s.dx * s.dy
	gHalfSi := k * cellArea / (s.dz / 2)
	for iy := 0; iy < s.ny; iy++ {
		for ix := 0; ix < s.nx; ix++ {
			var h float64
			if cfg.LocalH {
				x1 := float64(ix) * s.dx
				h = flow.SpanHeatTransferCoeff(x1, x1+s.dx)
			} else {
				h = flow.AvgHeatTransferCoeff()
			}
			gConvHalf := 2 * h * cellArea // half of R_conv = 1/(hA) → g = 2hA
			oil := s.oilIdx(ix, iy)
			s.capVec[oil] = oilCellCap
			top := s.siIdx(ix, iy, s.nz-1)
			// series: half-cell conduction + half convection
			gSeries := 1 / (1/gHalfSi + 1/gConvHalf)
			add(top, oil, gSeries)
			// oil node to ambient: appears on the diagonal only (Dirichlet
			// boundary folded into the operator).
			entries = append(entries, linalg.Coord{I: oil, J: oil, V: gConvHalf})
			s.ambIn[oil] = gConvHalf * cfg.AmbientK
		}
	}
	s.op = linalg.NewSparseOperator(linalg.NewCSR(s.n, entries), linalg.CGOptions{Tol: 1e-10, MaxIter: 50 * s.n})
	return s, nil
}

func (s *Solver) siIdx(ix, iy, iz int) int { return (iz*s.ny+iy)*s.nx + ix }
func (s *Solver) oilIdx(ix, iy int) int    { return s.nx*s.ny*s.nz + iy*s.nx + ix }

// N returns the number of unknowns.
func (s *Solver) N() int { return s.n }

// AmbientK returns the free-stream temperature.
func (s *Solver) AmbientK() float64 { return s.cfg.AmbientK }

// ResetPower zeroes the injected power.
func (s *Solver) ResetPower() {
	for i := range s.power {
		s.power[i] = 0
	}
}

// AddUniformPower spreads total watts uniformly over the active layer
// (bottom cell layer, iz = 0 — the device side of a flipped die under IR).
func (s *Solver) AddUniformPower(watts float64) {
	per := watts / float64(s.nx*s.ny)
	for iy := 0; iy < s.ny; iy++ {
		for ix := 0; ix < s.nx; ix++ {
			s.power[s.siIdx(ix, iy, 0)] += per
		}
	}
}

// AddRectPower injects watts uniformly into active-layer cells whose centers
// fall inside the rectangle [x0,x0+w]×[y0,y0+h] (meters). It returns the
// number of cells hit (0 means the rectangle missed the grid).
func (s *Solver) AddRectPower(watts, x0, y0, w, h float64) int {
	var hit []int
	for iy := 0; iy < s.ny; iy++ {
		cy := (float64(iy) + 0.5) * s.dy
		for ix := 0; ix < s.nx; ix++ {
			cx := (float64(ix) + 0.5) * s.dx
			if cx >= x0 && cx < x0+w && cy >= y0 && cy < y0+h {
				hit = append(hit, s.siIdx(ix, iy, 0))
			}
		}
	}
	if len(hit) == 0 {
		return 0
	}
	per := watts / float64(len(hit))
	for _, c := range hit {
		s.power[c] += per
	}
	return len(hit)
}

// AddFloorplanPower rasterizes a floorplan onto the active layer and injects
// each block's power uniformly over its cells. The floorplan must have the
// same bounding box as the die.
func (s *Solver) AddFloorplanPower(fp *floorplan.Floorplan, blockPower map[string]float64) error {
	for name, w := range blockPower {
		bi := fp.Index(name)
		if bi < 0 {
			return fmt.Errorf("refsolver: unknown block %q", name)
		}
		b := fp.Blocks[bi]
		if n := s.AddRectPower(w, b.X, b.Y, b.Width, b.Height); n == 0 && w > 0 {
			return fmt.Errorf("refsolver: block %q smaller than one grid cell", name)
		}
	}
	return nil
}

// rhs builds P + G_dirichlet·T_amb (the ambient enters through the oil
// nodes' diagonal terms, recorded in ambIn at assembly).
func (s *Solver) rhs() []float64 {
	out := make([]float64, s.n)
	for i := range out {
		out[i] = s.power[i] + s.ambIn[i]
	}
	return out
}

// Steady solves the steady-state temperature field. The returned slice is
// indexed by node (use Probe/TopMap to extract views).
func (s *Solver) Steady() ([]float64, error) {
	x0 := make([]float64, s.n)
	linalg.Fill(x0, s.cfg.AmbientK)
	x, err := s.op.Solve(s.rhs(), x0, nil, &s.ws)
	if err != nil {
		return nil, fmt.Errorf("refsolver: steady solve: %w", err)
	}
	return x, nil
}

// AmbientField returns an all-ambient field (cold start).
func (s *Solver) AmbientField() []float64 {
	x := make([]float64, s.n)
	linalg.Fill(x, s.cfg.AmbientK)
	return x
}

// StepBE advances the field by one backward-Euler step of size dt. The
// (C/dt + G) operator is rebuilt only when dt changes; each step is one CG
// solve warm-started from the previous field.
func (s *Solver) StepBE(temp []float64, dt float64) error {
	if len(temp) != s.n {
		return fmt.Errorf("refsolver: field length %d, want %d", len(temp), s.n)
	}
	if dt <= 0 {
		return fmt.Errorf("refsolver: non-positive dt")
	}
	if s.beOp == nil || s.beStep != dt {
		shift := make([]float64, s.n)
		for i, c := range s.capVec {
			shift[i] = c / dt
		}
		// Transient steps are warm-started and error-damped, so they get a
		// looser tolerance and tighter iteration budget than the steady
		// solver's 1e-10/50n.
		s.beOp = linalg.NewSparseOperator(s.op.Matrix().Shifted(shift),
			linalg.CGOptions{Tol: 1e-9, MaxIter: 20 * s.n})
		s.beStep = dt
	}
	rhs := s.rhs()
	for i := range rhs {
		rhs[i] += s.capVec[i] / dt * temp[i]
	}
	// Solve into scratch and commit only on success, so a stalled CG cannot
	// corrupt the caller's field.
	sol := make([]float64, s.n)
	if _, err := s.beOp.Solve(rhs, temp, sol, &s.ws); err != nil {
		return fmt.Errorf("refsolver: transient solve: %w", err)
	}
	copy(temp, sol)
	return nil
}

// Transient advances temp by duration with fixed BE steps of size dt.
func (s *Solver) Transient(temp []float64, duration, dt float64) error {
	t := 0.0
	for t < duration-1e-12*duration {
		step := dt
		if step > duration-t {
			step = duration - t
		}
		if err := s.StepBE(temp, step); err != nil {
			return err
		}
		t += step
	}
	return nil
}

// ProbeCenter returns the temperature (K) at the die center of the active
// layer — the probe location of the paper's Fig. 2.
func (s *Solver) ProbeCenter(temp []float64) float64 {
	return temp[s.siIdx(s.nx/2, s.ny/2, 0)]
}

// ActiveLayerStats returns the max, min and spread (K) over the active
// (device) layer — the quantities compared in the paper's Fig. 3.
func (s *Solver) ActiveLayerStats(temp []float64) (tmax, tmin, dT float64) {
	tmax, tmin = math.Inf(-1), math.Inf(1)
	for iy := 0; iy < s.ny; iy++ {
		for ix := 0; ix < s.nx; ix++ {
			v := temp[s.siIdx(ix, iy, 0)]
			tmax = math.Max(tmax, v)
			tmin = math.Min(tmin, v)
		}
	}
	return tmax, tmin, tmax - tmin
}

// TopMap returns the top-surface (oil-side silicon) temperature map in
// Celsius, row-major with row 0 at y=0. This is "what the IR camera sees".
func (s *Solver) TopMap(temp []float64) []float64 {
	out := make([]float64, s.nx*s.ny)
	for iy := 0; iy < s.ny; iy++ {
		for ix := 0; ix < s.nx; ix++ {
			out[iy*s.nx+ix] = materials.KToC(temp[s.siIdx(ix, iy, s.nz-1)])
		}
	}
	return out
}

// GridDims returns (nx, ny, nz).
func (s *Solver) GridDims() (int, int, int) { return s.nx, s.ny, s.nz }
