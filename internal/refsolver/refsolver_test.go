package refsolver

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/materials"
)

// paperCfg is the §3.2 validation setup: 20×20×0.5 mm silicon in a 10 m/s
// oil flow.
func paperCfg(nx, ny, nz int) Config {
	return Config{
		Width: 0.020, Height: 0.020, Thickness: 0.5e-3,
		NX: nx, NY: ny, NZ: nz,
		AmbientK: 300,
	}
}

func TestSteadyUniformMatchesLumped(t *testing.T) {
	// Uniform power on a uniform die: the fine-grid steady state must match
	// the trivial lumped answer T = T_amb + P·(R_si_half + R_conv) within a
	// few percent (the grid adds through-thickness resolution).
	s, err := New(paperCfg(20, 20, 4))
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(200)
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	flow := materials.LaminarFlow{Fluid: materials.MineralOil, Velocity: 10, PlateLen: 0.020}
	rconv := flow.ConvectionResistance(4e-4)
	rsi := materials.VerticalResistance(materials.Silicon, 0.5e-3, 4e-4)
	want := 300 + 200*(rconv+rsi/2) // power at bottom, sink at top
	got := s.ProbeCenter(temp)
	if math.Abs(got-want)/(want-300) > 0.05 {
		t.Fatalf("center T = %g K, lumped estimate %g K", got, want)
	}
}

func TestSteadyEnergyBalance(t *testing.T) {
	// All injected heat must leave through the oil: residual check via the
	// operator. G·T = rhs ⟹ heat out = Σ g_amb (T_oil − T_amb) = P_total.
	s, err := New(paperCfg(16, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.AddRectPower(10, 0.009, 0.009, 0.002, 0.002)
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	// Recompute outflow from oil nodes.
	flow := materials.LaminarFlow{Fluid: materials.MineralOil, Velocity: 10, PlateLen: 0.020}
	h := flow.AvgHeatTransferCoeff()
	nx, ny, _ := s.GridDims()
	cellArea := 0.020 / float64(nx) * 0.020 / float64(ny)
	var out float64
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			out += 2 * h * cellArea * (temp[s.oilIdx(ix, iy)] - 300)
		}
	}
	if math.Abs(out-10) > 0.01 {
		t.Fatalf("energy balance: out %g W, in 10 W", out)
	}
}

func TestCenterSourceGradient(t *testing.T) {
	// The Fig. 3 setup (2×2 mm, 10 W at center) creates a strong spatial
	// gradient: Tmax at center well above Tmin at the die corner.
	s, err := New(paperCfg(40, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	if n := s.AddRectPower(10, 0.009, 0.009, 0.002, 0.002); n != 16 {
		t.Fatalf("hot rect hit %d cells, want 16", n)
	}
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	tmax, tmin, dT := s.ActiveLayerStats(temp)
	if tmax <= tmin || dT < 5 {
		t.Fatalf("expected a pronounced gradient, got max %g min %g", tmax, tmin)
	}
	if got := s.ProbeCenter(temp); math.Abs(got-tmax) > 1e-9 {
		t.Fatalf("hottest point should be the center probe: %g vs %g", got, tmax)
	}
}

func TestTransientApproachesSteady(t *testing.T) {
	s, err := New(paperCfg(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(200)
	want, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	temp := s.AmbientField()
	// τ ≈ R_conv·C_si ≈ 0.5 s; 6 s ≫ τ.
	if err := s.Transient(temp, 6.0, 0.05); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.ProbeCenter(temp) - s.ProbeCenter(want)); d > 0.5 {
		t.Fatalf("transient end differs from steady by %g K", d)
	}
}

func TestTransientTimeConstantOrderOneSecond(t *testing.T) {
	// Paper Fig. 2: "the thermal time constant is on the order of a
	// second". Find the 63% point of the center probe's step response.
	s, err := New(paperCfg(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(200)
	steady, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	target := 300 + 0.632*(s.ProbeCenter(steady)-300)
	temp := s.AmbientField()
	tau := -1.0
	dt := 0.02
	for step := 1; step <= 300; step++ {
		if err := s.StepBE(temp, dt); err != nil {
			t.Fatal(err)
		}
		if s.ProbeCenter(temp) >= target {
			tau = float64(step) * dt
			break
		}
	}
	if tau < 0.1 || tau > 3.0 {
		t.Fatalf("τ = %g s, want order of a second", tau)
	}
}

func TestLocalHShiftsHotSpotDownstream(t *testing.T) {
	// With the position-dependent h(x) and flow along +x, a symmetric
	// uniform power load yields a top surface hotter downstream (paper
	// §4.2: the leading edge is cooled best).
	cfg := paperCfg(20, 20, 3)
	cfg.LocalH = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(100)
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	m := s.TopMap(temp)
	nx, ny, _ := s.GridDims()
	row := ny / 2
	lead := m[row*nx+1]
	trail := m[row*nx+nx-2]
	if trail <= lead {
		t.Fatalf("downstream (%g) should be hotter than leading edge (%g)", trail, lead)
	}
}

func TestFloorplanPowerInjection(t *testing.T) {
	cfg := Config{
		Width: 0.016, Height: 0.016, Thickness: 0.5e-3,
		NX: 32, NY: 32, NZ: 3, AmbientK: 318.15,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := floorplan.EV6()
	if err := s.AddFloorplanPower(fp, map[string]float64{"IntReg": 2, "L2": 5}); err != nil {
		t.Fatal(err)
	}
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	// The hottest active-layer cell should be inside IntReg (tiny area,
	// high density).
	nx, ny, _ := s.GridDims()
	best, bi := math.Inf(-1), -1
	for i := 0; i < nx*ny; i++ {
		if v := temp[i]; v > best {
			best, bi = v, i
		}
	}
	cx := (float64(bi%nx) + 0.5) * 0.016 / float64(nx)
	cy := (float64(bi/nx) + 0.5) * 0.016 / float64(ny)
	blk := fp.BlockAt(cx, cy)
	if blk < 0 || fp.Blocks[blk].Name != "IntReg" {
		name := "?"
		if blk >= 0 {
			name = fp.Blocks[blk].Name
		}
		t.Fatalf("hottest cell in %q, want IntReg", name)
	}
	if err := s.AddFloorplanPower(fp, map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown block should error")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{NX: 1, NY: 1, NZ: 1, Width: 1, Height: 1, Thickness: 1}); err == nil {
		t.Fatal("tiny grid should fail")
	}
	if _, err := New(Config{NX: 4, NY: 4, NZ: 2, Width: -1, Height: 1, Thickness: 1}); err == nil {
		t.Fatal("negative width should fail")
	}
	s, err := New(paperCfg(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StepBE(make([]float64, 3), 0.1); err == nil {
		t.Fatal("bad field length should fail")
	}
	if err := s.StepBE(s.AmbientField(), -1); err == nil {
		t.Fatal("negative dt should fail")
	}
}

func TestResetPower(t *testing.T) {
	s, err := New(paperCfg(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.AddUniformPower(100)
	s.ResetPower()
	temp, err := s.Steady()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.ProbeCenter(temp) - 300); d > 1e-6 {
		t.Fatalf("no power should mean ambient everywhere, off by %g", d)
	}
}
