// Package sensors models on-die thermal sensors and their placement: point
// sensors with offset error and sampling interval, greedy k-sensor placement
// over candidate sites, and the worst-case readout error analysis behind the
// paper's §5.3 (sensing granularity) and §5.4 (flow-direction-aware
// placement) discussions.
package sensors

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
)

// Sensor is one on-die temperature sensor.
type Sensor struct {
	// X, Y is the sensor location in die coordinates (m).
	X, Y float64
	// OffsetC is a fixed calibration error added to every reading (°C).
	OffsetC float64
	// Block is the floorplan block containing the sensor (set by Place or
	// AttachBlocks).
	Block string
}

// ThermalMap is a rasterized die temperature field (°C) as produced by
// hotspot.Result.Grid or refsolver.TopMap.
type ThermalMap struct {
	NX, NY int
	// Width and Height are the die dimensions (m).
	Width, Height float64
	// CellsC holds temperatures row-major, row 0 at the die bottom.
	CellsC []float64
}

// NewThermalMap validates and wraps a grid.
func NewThermalMap(nx, ny int, width, height float64, cells []float64) (*ThermalMap, error) {
	if nx <= 0 || ny <= 0 || len(cells) != nx*ny {
		return nil, fmt.Errorf("sensors: bad grid %dx%d with %d cells", nx, ny, len(cells))
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("sensors: bad die size %g×%g", width, height)
	}
	return &ThermalMap{NX: nx, NY: ny, Width: width, Height: height, CellsC: cells}, nil
}

// At returns the map temperature at die coordinates (x, y), clamped to the
// die bounds.
func (m *ThermalMap) At(x, y float64) float64 {
	ix := int(x / m.Width * float64(m.NX))
	iy := int(y / m.Height * float64(m.NY))
	if ix < 0 {
		ix = 0
	}
	if ix >= m.NX {
		ix = m.NX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= m.NY {
		iy = m.NY - 1
	}
	return m.CellsC[iy*m.NX+ix]
}

// Max returns the hottest map temperature and its location.
func (m *ThermalMap) Max() (tempC, x, y float64) {
	best := math.Inf(-1)
	var bx, by float64
	for iy := 0; iy < m.NY; iy++ {
		for ix := 0; ix < m.NX; ix++ {
			if v := m.CellsC[iy*m.NX+ix]; v > best {
				best = v
				bx = (float64(ix) + 0.5) * m.Width / float64(m.NX)
				by = (float64(iy) + 0.5) * m.Height / float64(m.NY)
			}
		}
	}
	return best, bx, by
}

// Read returns each sensor's reading of the map (map value plus offset).
func Read(m *ThermalMap, sensors []Sensor) []float64 {
	out := make([]float64, len(sensors))
	for i, s := range sensors {
		out[i] = m.At(s.X, s.Y) + s.OffsetC
	}
	return out
}

// ObservedMax returns the hottest sensor reading — what a DTM controller
// actually sees.
func ObservedMax(m *ThermalMap, sensors []Sensor) float64 {
	best := math.Inf(-1)
	for _, r := range Read(m, sensors) {
		if r > best {
			best = r
		}
	}
	return best
}

// HotSpotError returns the gap between the true die maximum and the hottest
// sensor reading (°C). Positive values mean the sensors under-report — the
// margin a DTM threshold must absorb (paper §5.3).
func HotSpotError(m *ThermalMap, sensors []Sensor) float64 {
	trueMax, _, _ := m.Max()
	return trueMax - ObservedMax(m, sensors)
}

// CandidateGrid returns an nx×ny grid of candidate sensor sites over the
// floorplan, each attached to its containing block.
func CandidateGrid(fp *floorplan.Floorplan, nx, ny int) []Sensor {
	minX, minY, _, _ := fp.Bounds()
	w, h := fp.Width(), fp.Height()
	var out []Sensor
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			x := minX + (float64(ix)+0.5)*w/float64(nx)
			y := minY + (float64(iy)+0.5)*h/float64(ny)
			s := Sensor{X: x, Y: y}
			if bi := fp.BlockAt(x, y); bi >= 0 {
				s.Block = fp.Blocks[bi].Name
			}
			out = append(out, s)
		}
	}
	return out
}

// Place selects k sensors from the candidate sites so that the worst-case
// hot-spot error over the training maps is minimized: a greedy pass adds the
// candidate that most reduces max-over-maps HotSpotError, followed by a
// swap-refinement pass that escapes the greedy local optima arising when
// training maps conflict (e.g. opposite flow directions, §5.4). The training
// maps should span the operating conditions the chip will see.
func Place(candidates []Sensor, maps []*ThermalMap, k int) ([]Sensor, float64, error) {
	if k <= 0 || k > len(candidates) {
		return nil, 0, fmt.Errorf("sensors: cannot place %d sensors from %d candidates", k, len(candidates))
	}
	if len(maps) == 0 {
		return nil, 0, fmt.Errorf("sensors: no training maps")
	}
	chosen := make([]int, 0, k)
	used := make([]bool, len(candidates))
	sel := func(idx []int) []Sensor {
		out := make([]Sensor, len(idx))
		for i, c := range idx {
			out[i] = candidates[c]
		}
		return out
	}
	for len(chosen) < k {
		bestIdx, bestErr := -1, math.Inf(1)
		for i := range candidates {
			if used[i] {
				continue
			}
			e := worstError(append(sel(chosen), candidates[i]), maps)
			if e < bestErr {
				bestIdx, bestErr = i, e
			}
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
	}
	final := refinePlacement(candidates, maps, chosen, used)
	return sel(chosen), final, nil
}

// refinePlacement performs steepest-descent swaps: replace any chosen sensor
// with any unused candidate while that lowers the worst-case error.
func refinePlacement(candidates []Sensor, maps []*ThermalMap, chosen []int, used []bool) float64 {
	sel := func() []Sensor {
		out := make([]Sensor, len(chosen))
		for i, c := range chosen {
			out[i] = candidates[c]
		}
		return out
	}
	cur := worstError(sel(), maps)
	for pass := 0; pass < 10; pass++ {
		improved := false
		for pos := range chosen {
			old := chosen[pos]
			for i := range candidates {
				if used[i] {
					continue
				}
				chosen[pos] = i
				if e := worstError(sel(), maps); e < cur-1e-12 {
					used[old] = false
					used[i] = true
					cur = e
					old = i
					improved = true
				} else {
					chosen[pos] = old
				}
			}
			chosen[pos] = old
		}
		if !improved {
			break
		}
	}
	return cur
}

// ErrorVsCount returns the worst-case hot-spot error achieved by the greedy
// placement for each sensor budget 1..maxK. This regenerates the paper's
// §5.3 observation: the steeper OIL-SILICON gradients need more sensors (or
// larger margins) than AIR-SINK for the same accuracy.
func ErrorVsCount(candidates []Sensor, maps []*ThermalMap, maxK int) ([]float64, error) {
	if maxK <= 0 || maxK > len(candidates) {
		return nil, fmt.Errorf("sensors: bad budget %d", maxK)
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("sensors: no training maps")
	}
	// One greedy run; record the error after each addition.
	out := make([]float64, maxK)
	chosen := make([]Sensor, 0, maxK)
	used := make([]bool, len(candidates))
	for k := 0; k < maxK; k++ {
		bestIdx, bestErr := -1, math.Inf(1)
		for i, c := range candidates {
			if used[i] {
				continue
			}
			e := worstError(append(chosen, c), maps)
			if e < bestErr {
				bestIdx, bestErr = i, e
			}
		}
		used[bestIdx] = true
		chosen = append(chosen, candidates[bestIdx])
		out[k] = bestErr
	}
	return out, nil
}

func worstError(sel []Sensor, maps []*ThermalMap) float64 {
	w := math.Inf(-1)
	for _, m := range maps {
		if e := HotSpotError(m, sel); e > w {
			w = e
		}
	}
	return w
}

// SamplingInterval returns the longest sensor sampling interval (seconds)
// that keeps the temperature change between samples below resolutionC,
// given the maximum observed heating rate (°C/s). This is the paper's §5.2
// calculation: ≈5 °C in 3 ms with 0.1 °C resolution ⇒ ≤60 µs.
func SamplingInterval(maxRateCPerS, resolutionC float64) (float64, error) {
	if maxRateCPerS <= 0 {
		return 0, fmt.Errorf("sensors: non-positive heating rate %g", maxRateCPerS)
	}
	if resolutionC <= 0 {
		return 0, fmt.Errorf("sensors: non-positive resolution %g", resolutionC)
	}
	return resolutionC / maxRateCPerS, nil
}

// MaxHeatingRate scans a temperature trace (time, °C pairs for one block)
// and returns the steepest positive slope in °C/s.
func MaxHeatingRate(times, temps []float64) (float64, error) {
	if len(times) != len(temps) || len(times) < 2 {
		return 0, fmt.Errorf("sensors: need ≥2 matched samples")
	}
	var best float64
	for i := 1; i < len(times); i++ {
		dt := times[i] - times[i-1]
		if dt <= 0 {
			return 0, fmt.Errorf("sensors: non-increasing time at %d", i)
		}
		if r := (temps[i] - temps[i-1]) / dt; r > best {
			best = r
		}
	}
	return best, nil
}

// RankBlocks orders block names by their temperature in the map of per-block
// temperatures, hottest first. Useful for comparing hot-spot rankings across
// packages and flow directions.
func RankBlocks(blockTempC map[string]float64) []string {
	names := make([]string, 0, len(blockTempC))
	for n := range blockTempC {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if blockTempC[names[i]] != blockTempC[names[j]] {
			return blockTempC[names[i]] > blockTempC[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
