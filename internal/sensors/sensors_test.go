package sensors

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

// gradientMap builds a simple left-to-right gradient map.
func gradientMap(t *testing.T, nx, ny int, lo, hi float64) *ThermalMap {
	t.Helper()
	cells := make([]float64, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			cells[iy*nx+ix] = lo + (hi-lo)*float64(ix)/float64(nx-1)
		}
	}
	m, err := NewThermalMap(nx, ny, 0.016, 0.016, cells)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestThermalMapAtAndMax(t *testing.T) {
	m := gradientMap(t, 8, 8, 40, 80)
	if v := m.At(0.0, 0.008); math.Abs(v-40) > 1e-9 {
		t.Fatalf("left edge %g", v)
	}
	if v := m.At(0.0159, 0.008); math.Abs(v-80) > 1e-9 {
		t.Fatalf("right edge %g", v)
	}
	// Out-of-bounds clamps.
	if v := m.At(-1, -1); math.Abs(v-40) > 1e-9 {
		t.Fatalf("clamp %g", v)
	}
	mx, x, _ := m.Max()
	if mx != 80 || x < 0.014 {
		t.Fatalf("max %g at x=%g", mx, x)
	}
}

func TestNewThermalMapValidation(t *testing.T) {
	if _, err := NewThermalMap(2, 2, 1, 1, make([]float64, 3)); err == nil {
		t.Fatal("cell count mismatch should fail")
	}
	if _, err := NewThermalMap(2, 2, 0, 1, make([]float64, 4)); err == nil {
		t.Fatal("zero width should fail")
	}
}

func TestReadAndHotSpotError(t *testing.T) {
	m := gradientMap(t, 16, 16, 50, 90)
	// Sensor at the cold edge misses the hot spot by ~40 °C.
	cold := []Sensor{{X: 0.001, Y: 0.008}}
	if e := HotSpotError(m, cold); e < 35 {
		t.Fatalf("cold-edge sensor error %g, want ≈40", e)
	}
	// Sensor at the hot edge nails it.
	hot := []Sensor{{X: 0.0155, Y: 0.008}}
	if e := HotSpotError(m, hot); e > 3 {
		t.Fatalf("hot-edge sensor error %g, want ≈0", e)
	}
	// Offset shifts readings.
	offset := []Sensor{{X: 0.0155, Y: 0.008, OffsetC: -5}}
	if e := HotSpotError(m, offset); e < 4 {
		t.Fatalf("offset should add error, got %g", e)
	}
}

func TestCandidateGridAttachesBlocks(t *testing.T) {
	fp := floorplan.EV6()
	cands := CandidateGrid(fp, 8, 8)
	if len(cands) != 64 {
		t.Fatalf("%d candidates", len(cands))
	}
	for _, c := range cands {
		if c.Block == "" {
			t.Fatal("candidate not attached to a block")
		}
	}
}

func TestGreedyPlacementFindsHotSpot(t *testing.T) {
	m := gradientMap(t, 16, 16, 50, 90)
	fp := floorplan.UniformDie("die", 0.016, 0.016)
	cands := CandidateGrid(fp, 8, 8)
	placed, err0, err := Place(cands, []*ThermalMap{m}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if placed[0].X < 0.012 {
		t.Fatalf("single sensor should go near the hot edge, got x=%g", placed[0].X)
	}
	if err0 > 3 {
		t.Fatalf("placement error %g too large", err0)
	}
}

func TestPlacementAcrossConflictingMaps(t *testing.T) {
	// Two maps with opposite gradients (the §5.4 flow-direction scenario):
	// one sensor cannot cover both; two can.
	left := gradientMap(t, 16, 16, 50, 90) // hot right
	cells := make([]float64, 16*16)
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			cells[iy*16+ix] = 50 + 40*float64(15-ix)/15 // hot left
		}
	}
	right, _ := NewThermalMap(16, 16, 0.016, 0.016, cells)
	fp := floorplan.UniformDie("die", 0.016, 0.016)
	cands := CandidateGrid(fp, 8, 8)
	maps := []*ThermalMap{left, right}
	_, e1, err := Place(cands, maps, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := Place(cands, maps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("two sensors should beat one: %g vs %g", e2, e1)
	}
	if e1 < 10 {
		t.Fatalf("one sensor cannot cover opposite gradients: error %g suspiciously low", e1)
	}
	if e2 > 5 {
		t.Fatalf("two sensors should cover both hot edges: error %g", e2)
	}
}

func TestErrorVsCountMonotone(t *testing.T) {
	m := gradientMap(t, 16, 16, 50, 90)
	fp := floorplan.UniformDie("die", 0.016, 0.016)
	cands := CandidateGrid(fp, 6, 6)
	errs, err := ErrorVsCount(cands, []*ThermalMap{m}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-9 {
			t.Fatalf("error must not increase with more sensors: %v", errs)
		}
	}
}

func TestOilNeedsMoreSensorsThanAir(t *testing.T) {
	// End-to-end §5.3: with the same sensor budget, the steeper OIL-SILICON
	// gradient leaves a larger worst-case error than AIR-SINK.
	fp := floorplan.EV6()
	power := map[string]float64{"IntReg": 2.0, "IntExec": 1.8, "Dcache": 3.0, "L2": 5.0}
	mapFor := func(kind hotspot.PackageKind) *ThermalMap {
		cfg := hotspot.Config{Floorplan: fp, Package: kind}
		if kind == hotspot.OilSilicon {
			cfg.Oil = hotspot.OilConfig{TargetRconv: 1.0}
		} else {
			cfg.Air = hotspot.AirSinkConfig{RConvec: 1.0}
		}
		m, err := hotspot.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.PowerVector(power)
		if err != nil {
			t.Fatal(err)
		}
		grid := m.SteadyState(p).Grid(32, 32)
		tm, err := NewThermalMap(32, 32, fp.Width(), fp.Height(), grid)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	oil := mapFor(hotspot.OilSilicon)
	air := mapFor(hotspot.AirSink)
	cands := CandidateGrid(fp, 6, 6)
	const k = 2
	_, eOil, err := Place(cands, []*ThermalMap{oil}, k)
	if err != nil {
		t.Fatal(err)
	}
	_, eAir, err := Place(cands, []*ThermalMap{air}, k)
	if err != nil {
		t.Fatal(err)
	}
	if eOil <= eAir {
		t.Fatalf("OIL-SILICON error %g should exceed AIR-SINK %g at k=%d", eOil, eAir, k)
	}
}

func TestSamplingInterval(t *testing.T) {
	// §5.2: 5 °C in 3 ms, 0.1 °C resolution ⇒ 60 µs.
	iv, err := SamplingInterval(5.0/3e-3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-60e-6) > 1e-9 {
		t.Fatalf("interval %g, want 60 µs", iv)
	}
	if _, err := SamplingInterval(0, 0.1); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := SamplingInterval(1, 0); err == nil {
		t.Fatal("zero resolution should fail")
	}
}

func TestMaxHeatingRate(t *testing.T) {
	times := []float64{0, 1e-3, 2e-3, 3e-3}
	temps := []float64{60, 62, 65, 64}
	r, err := MaxHeatingRate(times, temps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3000) > 1e-9 {
		t.Fatalf("rate %g, want 3000 °C/s", r)
	}
	if _, err := MaxHeatingRate([]float64{0}, []float64{1}); err == nil {
		t.Fatal("too few samples should fail")
	}
	if _, err := MaxHeatingRate([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing time should fail")
	}
}

func TestRankBlocks(t *testing.T) {
	r := RankBlocks(map[string]float64{"a": 50, "b": 90, "c": 70})
	if r[0] != "b" || r[1] != "c" || r[2] != "a" {
		t.Fatalf("rank %v", r)
	}
}

func TestPlaceValidation(t *testing.T) {
	m := gradientMap(t, 4, 4, 1, 2)
	if _, _, err := Place(nil, []*ThermalMap{m}, 1); err == nil {
		t.Fatal("no candidates should fail")
	}
	cands := []Sensor{{X: 0, Y: 0}}
	if _, _, err := Place(cands, nil, 1); err == nil {
		t.Fatal("no maps should fail")
	}
	if _, err := ErrorVsCount(cands, []*ThermalMap{m}, 5); err == nil {
		t.Fatal("budget beyond candidates should fail")
	}
}
