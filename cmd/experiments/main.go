// Command experiments regenerates every table and figure of the paper's
// evaluation (Figs. 2-12, §5.2-5.4) plus the design-choice ablations, and
// prints them in the order they appear in the paper.
//
//	experiments            # quick mode (minutes)
//	experiments -full      # full-length workload runs
//	experiments -only fig11,fig12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	id  string
	run func(experiments.Options) (fmt.Stringer, error)
}

// wrap adapts a typed experiment function to the generic runner signature.
func wrap[T fmt.Stringer](f func(experiments.Options) (T, error)) func(experiments.Options) (fmt.Stringer, error) {
	return func(o experiments.Options) (fmt.Stringer, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

func main() {
	full := flag.Bool("full", false, "full-length runs (quick mode is the default)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig2,fig11,sec54,ablations)")
	flag.Parse()

	all := []runner{
		{"fig2", wrap(experiments.Fig2TransientValidation)},
		{"fig3", wrap(experiments.Fig3SteadyValidation)},
		{"fig4", wrap(experiments.Fig4AthlonMap)},
		{"fig5", wrap(experiments.Fig5SecondaryPath)},
		{"fig6", wrap(experiments.Fig6Warmup)},
		{"fig7", wrap(experiments.Fig7TimeConstants)},
		{"fig8", wrap(experiments.Fig8ShortTransient)},
		{"fig9", wrap(experiments.Fig9HotSpotMigration)},
		{"fig10", wrap(experiments.Fig10SteadyMaps)},
		{"fig11", wrap(experiments.Fig11FlowDirections)},
		{"fig12", wrap(experiments.Fig12TempTraces)},
		{"sec52", wrap(experiments.Sec52SensingFrequency)},
		{"sec53", wrap(experiments.Sec53SensorGranularity)},
		{"sec54", wrap(experiments.Sec54PlacementInversion)},
		{"ext-designspace", wrap(experiments.ExtDesignSpace)},
		{"ablation-localh", wrap(experiments.AblationLocalH)},
		{"ablation-oilcap", wrap(experiments.AblationBoundaryCap)},
		{"ablation-integrator", wrap(experiments.AblationIntegrator)},
		{"ablation-spreader", wrap(experiments.AblationSpreader)},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		// "ablations" expands to every ablation-* experiment. (It used to be
		// dropped before the expansion check ever saw it, which made
		// -only ablations run the whole suite.)
		if want["ablations"] {
			delete(want, "ablations")
			for _, r := range all {
				if strings.HasPrefix(r.id, "ablation-") {
					want[r.id] = true
				}
			}
		}
	}
	opt := experiments.Options{Quick: !*full}
	failed := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		res, err := r.run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", r.id, err)
			failed++
			continue
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", r.id, time.Since(start).Seconds(), res.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
