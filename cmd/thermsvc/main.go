// Command thermsvc serves the thermal simulation stack over HTTP/JSON: a
// long-lived process that amortizes model compilation across requests with
// a single-flight LRU cache and ingests power traces as streams.
//
// Usage:
//
//	thermsvc -addr :8080 -cache 32 -concurrency 4 -queue 64
//	thermsvc -store /var/lib/thermsvc/tstore   # enable telemetry persistence + /v1/query
//
// SIGTERM/SIGINT triggers a graceful drain: new requests shed with 503 +
// Retry-After while in-flight solves get up to -drain to finish, then the
// store flushes and closes.
//
// Example requests (see DESIGN.md §7 for the full API):
//
//	# steady state of the EV6 under oil
//	curl -s localhost:8080/v1/steady -d '{
//	  "model": {"floorplan":"ev6","package":"oil-silicon","rconv":1.0},
//	  "power": {"IntReg": 2.0, "Dcache": 1.2}}'
//
//	# stream a ptrace file straight into a transient
//	curl -s -H 'Content-Type: text/plain' --data-binary @chip.ptrace \
//	  'localhost:8080/v1/transient?floorplan=ev6&package=air-sink&max_points=50'
//
//	# cache/queue/latency counters
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/tstore"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheCap    = flag.Int("cache", 32, "compiled-model cache capacity")
		concurrency = flag.Int("concurrency", 4, "max concurrent solves")
		queue       = flag.Int("queue", 64, "max queued requests before shedding with 429")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight solves after SIGTERM/SIGINT")
		storeDir    = flag.String("store", "", "telemetry store directory (enables /v1/query and persist=<run>); empty = off")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
	)
	flag.Parse()

	var store *tstore.Store
	if *storeDir != "" {
		st, err := tstore.Open(*storeDir, tstore.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "thermsvc: open store:", err)
			os.Exit(1)
		}
		store = st
		stats := st.Stats()
		log.Printf("thermsvc: telemetry store %s (%d series, %d rows recovered)",
			*storeDir, stats.Series, stats.Rows)
	}

	srv := service.New(service.Config{
		CacheCap:       *cacheCap,
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		DrainTimeout:   *drain,
		Store:          store,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// Profiling stays opt-in and on its own listener: the debug surface
		// is never reachable through the service port, and binding it to
		// localhost (the sensible value) keeps it off the network entirely.
		// scripts/profile.sh drives this endpoint.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("thermsvc: pprof on %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("thermsvc: pprof listener: %v", err)
			}
		}()
	}

	log.Printf("thermsvc: listening on %s (cache %d models, %d concurrent solves, queue %d)",
		*addr, *cacheCap, *concurrency, *queue)
	err := srv.Serve(ctx, *addr)
	if store != nil {
		// Close after Serve returns so in-flight persists have finished; Close
		// flushes every staged row into durable segments.
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsvc:", err)
		os.Exit(1)
	}
	log.Print("thermsvc: shut down")
}
