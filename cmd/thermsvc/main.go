// Command thermsvc serves the thermal simulation stack over HTTP/JSON: a
// long-lived process that amortizes model compilation across requests with
// a single-flight LRU cache and ingests power traces as streams.
//
// Usage:
//
//	thermsvc -addr :8080 -cache 32 -concurrency 4 -queue 64
//	thermsvc -store /var/lib/thermsvc/tstore   # enable telemetry persistence + /v1/query
//	thermsvc -addr :8080 -fleet 10.0.0.1:8080,10.0.0.2:8080,10.0.0.3:8080
//
// With -fleet the process is a routing front end instead of a solver: it
// spreads requests across the listed replicas by consistent-hash model
// affinity, health-probes them, retries/hedges/fails over around dead ones
// (DESIGN.md §13), and serves the fleet block on its own /v1/stats. All
// solver flags (-cache, -concurrency, ...) are ignored in fleet mode.
//
// SIGTERM/SIGINT triggers a graceful drain: new requests shed with 503 +
// Retry-After while in-flight solves get up to -drain to finish, then the
// store flushes and closes.
//
// Example requests (see DESIGN.md §7 for the full API):
//
//	# steady state of the EV6 under oil
//	curl -s localhost:8080/v1/steady -d '{
//	  "model": {"floorplan":"ev6","package":"oil-silicon","rconv":1.0},
//	  "power": {"IntReg": 2.0, "Dcache": 1.2}}'
//
//	# stream a ptrace file straight into a transient
//	curl -s -H 'Content-Type: text/plain' --data-binary @chip.ptrace \
//	  'localhost:8080/v1/transient?floorplan=ev6&package=air-sink&max_points=50'
//
//	# cache/queue/latency counters
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/tstore"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheCap    = flag.Int("cache", 32, "compiled-model cache capacity")
		concurrency = flag.Int("concurrency", 4, "max concurrent solves")
		queue       = flag.Int("queue", 64, "max queued requests before shedding with 429")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight solves after SIGTERM/SIGINT")
		storeDir    = flag.String("store", "", "telemetry store directory (enables /v1/query and persist=<run>); empty = off")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
		fleetList   = flag.String("fleet", "", "comma-separated replica addresses; run as a fleet router instead of a solver")
		hedge       = flag.Duration("hedge", 200*time.Millisecond, "fleet mode: delay before hedging idempotent solves (negative = off)")
		probeEvery  = flag.Duration("probe", time.Second, "fleet mode: health-probe interval")
	)
	flag.Parse()

	if *fleetList != "" {
		if err := runFleet(*addr, *fleetList, *hedge, *probeEvery, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "thermsvc:", err)
			os.Exit(1)
		}
		return
	}

	var store *tstore.Store
	if *storeDir != "" {
		st, err := tstore.Open(*storeDir, tstore.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "thermsvc: open store:", err)
			os.Exit(1)
		}
		store = st
		stats := st.Stats()
		log.Printf("thermsvc: telemetry store %s (%d series, %d rows recovered)",
			*storeDir, stats.Series, stats.Rows)
	}

	srv := service.New(service.Config{
		CacheCap:       *cacheCap,
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		DrainTimeout:   *drain,
		Store:          store,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// Profiling stays opt-in and on its own listener: the debug surface
		// is never reachable through the service port, and binding it to
		// localhost (the sensible value) keeps it off the network entirely.
		// scripts/profile.sh drives this endpoint.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("thermsvc: pprof on %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("thermsvc: pprof listener: %v", err)
			}
		}()
	}

	log.Printf("thermsvc: listening on %s (cache %d models, %d concurrent solves, queue %d)",
		*addr, *cacheCap, *concurrency, *queue)
	err := srv.Serve(ctx, *addr)
	if store != nil {
		// Close after Serve returns so in-flight persists have finished; Close
		// flushes every staged row into durable segments.
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsvc:", err)
		os.Exit(1)
	}
	log.Print("thermsvc: shut down")
}

// runFleet serves the routing front end: the full replica API proxied by
// model affinity with retries, hedging and failover. Shutdown mirrors the
// solver's graceful drain: stop accepting, give in-flight proxied requests
// the drain window, then stop the prober.
func runFleet(addr, replicaList string, hedge, probeEvery, drain time.Duration) error {
	replicas := strings.Split(replicaList, ",")
	rt, err := fleet.New(fleet.Config{
		Replicas:      replicas,
		ProbeInterval: probeEvery,
		HedgeDelay:    hedge,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("thermsvc: fleet router on %s over %d replicas (hedge %v, probe %v)",
		addr, len(replicas), hedge, probeEvery)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("thermsvc: draining fleet router")
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Print("thermsvc: shut down")
	return nil
}
