package main

// Remote mode: thermsim as a resilient client of a thermsvc replica or a
// `thermsvc -fleet` router. Both the transient replay (-remote on the main
// command) and `thermsim query -remote` ride fleet.RetryClient — capped
// exponential backoff with full jitter honoring the service's Retry-After
// convention — so a shedding (429) or draining (503) fleet is retried
// politely with a clear final error instead of treated as fatal on the
// first response.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/tstore"
)

// remoteAttempts is the client-side retry budget against a remote service;
// the fleet router has its own internal failover budget on top.
const remoteAttempts = 5

func newRemoteClient() *fleet.RetryClient {
	return &fleet.RetryClient{
		HTTP:   &http.Client{Timeout: 5 * time.Minute},
		Policy: fleet.RetryPolicy{MaxAttempts: remoteAttempts, BaseBackoff: 200 * time.Millisecond, MaxBackoff: 5 * time.Second, MaxRetryAfter: 15 * time.Second},
		OnRetry: func(attempt int, sleep time.Duration, cause string) {
			fmt.Fprintf(os.Stderr, "thermsim: remote attempt %d failed (%s); retrying in %v\n",
				attempt, cause, sleep.Round(time.Millisecond))
		},
	}
}

func normalizeRemote(remote string) string {
	if !strings.Contains(remote, "://") {
		remote = "http://" + remote
	}
	return strings.TrimRight(remote, "/")
}

// remoteError turns a non-200 definitive response into a readable error.
func remoteError(resp *http.Response) error {
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return fmt.Errorf("remote: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("remote: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// runRemoteTransient replays a ptrace file against a remote thermsvc/fleet
// transient endpoint (the streamed form: model spec in the query string,
// trace as the body), optionally persisting it server-side under -run.
func runRemoteTransient(remote, flpName, flpFile, ptrace, pkg, direction string,
	rconv float64, secondary bool, ambientC, interval float64, runName string) error {
	if ptrace == "" {
		return fmt.Errorf("-remote transient replay needs -ptrace (the trace streams to the server)")
	}
	body, err := os.ReadFile(ptrace)
	if err != nil {
		return err
	}
	q := url.Values{}
	if flpFile != "" {
		flp, err := os.ReadFile(flpFile)
		if err != nil {
			return err
		}
		q.Set("flp", string(flp))
	} else {
		q.Set("floorplan", flpName)
	}
	q.Set("package", pkg)
	q.Set("direction", direction)
	if rconv != 0 {
		q.Set("rconv", strconv.FormatFloat(rconv, 'g', -1, 64))
	}
	if secondary {
		q.Set("secondary", "true")
	}
	q.Set("ambient_c", strconv.FormatFloat(ambientC, 'g', -1, 64))
	if interval > 0 {
		q.Set("interval", strconv.FormatFloat(interval, 'g', -1, 64))
	}
	if runName != "" {
		q.Set("persist", runName)
	}
	target := normalizeRemote(remote) + "/v1/transient?" + q.Encode()

	resp, err := newRemoteClient().Do(context.Background(), func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		return req, nil
	})
	if err != nil {
		if resp != nil {
			resp.Body.Close()
		}
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp)
	}
	defer resp.Body.Close()
	var tr service.TransientResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("decode remote response: %w", err)
	}

	fmt.Printf("remote transient: %d steps, %d sampled points, cache %s, solve %.1f ms\n",
		tr.Steps, len(tr.Points), tr.Cache, tr.SolveMS)
	hotName, hotC := "", -1e9
	for name, c := range tr.PeakC {
		if c > hotC {
			hotName, hotC = name, c
		}
	}
	if hotName != "" {
		fmt.Printf("peak: %s at %.2f °C\n", hotName, hotC)
	}
	if tr.Persist != "" {
		fmt.Printf("persisted run %q: %d rows", tr.Persist, tr.PersistedRows)
		if tr.PersistPending {
			fmt.Printf(" (flush pending server-side)")
		}
		fmt.Println()
	}
	return nil
}

// runRemoteQuery serves `thermsim query -remote`: the same listing/range
// surface as the local store path, answered by a remote /v1/query.
func runRemoteQuery(remote, series string, list bool, fromS, toS string, downsample float64, ndjson bool) error {
	base := normalizeRemote(remote)
	client := newRemoteClient()
	get := func(target string) (*http.Response, error) {
		resp, err := client.Do(context.Background(), func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		})
		if err != nil {
			if resp != nil {
				resp.Body.Close()
			}
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, remoteError(resp)
		}
		return resp, nil
	}

	if list {
		resp, err := get(base + "/v1/query/series")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var sl service.SeriesListResponse
		if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
			return fmt.Errorf("decode series list: %w", err)
		}
		fmt.Printf("remote %s: %d series\n", base, len(sl.Series))
		fmt.Println("series                                   rows  segments     first(s)      last(s)")
		for _, si := range sl.Series {
			fmt.Printf("%-38s %6d  %8d  %11.6f  %11.6f\n",
				si.Name, si.Rows, si.Segments, tstore.Seconds(si.FirstT), tstore.Seconds(si.LastT))
		}
		return nil
	}
	if series == "" {
		return fmt.Errorf("need -series (or -list)")
	}

	q := url.Values{}
	q.Set("series", series)
	if fromS != "" {
		q.Set("from_s", fromS)
	}
	if toS != "" {
		q.Set("to_s", toS)
	}
	if downsample > 0 {
		q.Set("downsample_s", strconv.FormatFloat(downsample, 'g', -1, 64))
	}

	if ndjson {
		// The streaming endpoint already speaks the NDJSON telemetry wire
		// format; pass it through verbatim.
		resp, err := get(base + "/v1/query/stream?" + q.Encode())
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}

	resp, err := get(base + "/v1/query?" + q.Encode())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var qr service.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return fmt.Errorf("decode query response: %w", err)
	}
	if qr.DownsampleNs > 0 {
		fmt.Printf("%s: %d buckets of %.6g s (%d rollup-served, %d from raw)\n",
			qr.Series, len(qr.Buckets), tstore.Seconds(qr.DownsampleNs), qr.RollupBuckets, qr.RawBuckets)
		fmt.Println("    start(s)  count      min °C      max °C     mean °C")
		for _, b := range qr.Buckets {
			fmt.Printf("%12.6f  %5d  %10.4f  %10.4f  %10.4f\n",
				tstore.Seconds(b.StartNs), b.Count, b.Min, b.Max, b.Mean)
		}
		return nil
	}
	fmt.Printf("%s: %d rows\n", qr.Series, len(qr.Rows))
	fmt.Println("        t(s)          °C")
	for _, r := range qr.Rows {
		fmt.Printf("%12.6f  %10.4f\n", tstore.Seconds(r.TNs), r.V)
	}
	return nil
}
