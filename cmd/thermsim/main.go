// Command thermsim runs the modified HotSpot thermal model on a floorplan
// and power input, under either cooling configuration.
//
// Usage examples:
//
//	# steady state of the built-in EV6 under oil, gcc average power
//	thermsim -floorplan ev6 -workload gcc -package oil-silicon -direction t2b
//
//	# transient on an external floorplan + ptrace
//	thermsim -flp chip.flp -ptrace chip.ptrace -package air-sink -rconv 0.3 -transient
//
// With -workload the power comes from the built-in synthetic workload
// pipeline (gcc/mcf/art); with -ptrace it is read from a HotSpot-format
// power trace file.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

func main() {
	var (
		flpName   = flag.String("floorplan", "ev6", "built-in floorplan: ev6 | athlon")
		flpFile   = flag.String("flp", "", "external floorplan file (HotSpot .flp format; overrides -floorplan)")
		workload  = flag.String("workload", "", "synthetic workload for power: gcc | mcf | art (EV6 floorplan only)")
		ptrace    = flag.String("ptrace", "", "power trace file (HotSpot .ptrace format)")
		pkg       = flag.String("package", "air-sink", "cooling: air-sink | oil-silicon | water-sink")
		direction = flag.String("direction", "uniform", "oil flow direction: uniform | l2r | r2l | b2t | t2b")
		rconv     = flag.Float64("rconv", 0, "override convection resistance (K/W); 0 = package default")
		secondary = flag.Bool("secondary", false, "model the secondary heat transfer path")
		ambientC  = flag.Float64("ambient", 45, "ambient temperature (°C)")
		transient = flag.Bool("transient", false, "run the full power trace transiently (default: steady state of the average)")
		cycles    = flag.Uint64("cycles", 20_000_000, "simulated cycles for -workload")
		showMap   = flag.Bool("map", false, "print an ASCII thermal map")
	)
	flag.Parse()
	if err := run(*flpName, *flpFile, *workload, *ptrace, *pkg, *direction, *rconv, *secondary, *ambientC, *transient, *cycles, *showMap); err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
}

func run(flpName, flpFile, workload, ptrace, pkg, direction string, rconv float64, secondary bool, ambientC float64, transient bool, cycles uint64, showMap bool) error {
	// Floorplan.
	var fp *floorplan.Floorplan
	switch {
	case flpFile != "":
		f, err := os.Open(flpFile)
		if err != nil {
			return err
		}
		defer f.Close()
		parsed, err := floorplan.Parse(f)
		if err != nil {
			return err
		}
		fp = parsed
	case flpName == "ev6":
		fp = floorplan.EV6()
	case flpName == "athlon":
		fp = floorplan.Athlon()
	default:
		return fmt.Errorf("unknown floorplan %q", flpName)
	}

	// Power.
	var tr *trace.PowerTrace
	switch {
	case workload != "":
		var err error
		tr, err = core.RunWorkload(core.WorkloadSpec{Name: workload, Cycles: cycles})
		if err != nil {
			return err
		}
	case ptrace != "":
		f, err := os.Open(ptrace)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f, 3.33e-6)
		if err != nil {
			return err
		}
	case flpName == "athlon" && flpFile == "":
		var err error
		tr, err = trace.Step(fp.Names(), floorplan.AthlonPowers(), 1, 1)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload or -ptrace for power input")
	}

	model, err := core.BuildModel(fp, core.PackageSpec{
		Kind: pkg, Rconv: rconv, Direction: direction,
		Secondary: secondary, AmbientK: ambientC + 273.15,
	})
	if err != nil {
		return err
	}
	fmt.Printf("floorplan: %d blocks, %.1f×%.1f mm die\n", fp.N(), fp.Width()*1e3, fp.Height()*1e3)
	fmt.Printf("package: %s, R_conv = %.3f K/W, ambient %.1f °C\n", pkg, model.RconvEffective(), ambientC)
	fmt.Printf("power: %.1f W average over %d samples\n", tr.TotalAverage(), len(tr.Rows))

	avg := tr.Average()
	pm := map[string]float64{}
	for i, n := range tr.Names {
		pm[n] = avg[i]
	}
	vec, err := model.PowerVector(pm)
	if err != nil {
		return err
	}
	res := model.SteadyState(vec)

	if transient {
		state := append([]float64(nil), res.Temps...)
		// Route the replay through the batched transient API (a batch of
		// one), the same worker-pool path scenario sweeps use.
		batch, err := model.RunTraceBatch([]hotspot.TraceJob{{
			Temps: state,
			Schedule: func(t float64, p []float64) {
				row := tr.At(t)
				for bi, name := range fp.Names() {
					c := tr.Column(name)
					if c >= 0 {
						p[bi] = row[c]
					}
				}
			},
			Duration:    tr.Duration(),
			SampleEvery: tr.Interval,
		}}, 0)
		if err != nil {
			return err
		}
		pts := batch[0]
		res = model.NewResult(state)
		// Report the peak over the run.
		peak := make([]float64, fp.N())
		for _, p := range pts {
			for i, v := range p.BlockC {
				if v > peak[i] {
					peak[i] = v
				}
			}
		}
		fmt.Printf("\ntransient run: %d points over %.4g s\n", len(pts), tr.Duration())
		fmt.Println("block                 final °C   peak °C")
		for i, n := range fp.Names() {
			fmt.Printf("%-20s  %8.1f  %8.1f\n", n, res.BlocksC()[i], peak[i])
		}
	} else {
		fmt.Println("\nsteady state:")
		fmt.Println("block                     °C")
		for i, n := range fp.Names() {
			fmt.Printf("%-20s  %8.1f\n", n, res.BlocksC()[i])
		}
	}
	hotName, hot := res.Hottest()
	coolName, cool := res.Coolest()
	fmt.Printf("\nhottest %s %.1f °C | coolest %s %.1f °C | spread %.1f °C | avg %.1f °C\n",
		hotName, hot, coolName, cool, res.Spread(), res.AverageC())

	if showMap {
		printASCIIMap(res.Grid(64, 32), 64, 32)
	}
	return nil
}

// printASCIIMap renders a Celsius grid with a coarse intensity ramp.
func printASCIIMap(grid []float64, nx, ny int) {
	lo, hi := grid[0], grid[0]
	for _, v := range grid {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ramp := " .:-=+*#%@"
	fmt.Printf("\nthermal map (%.1f .. %.1f °C):\n", lo, hi)
	for iy := ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < nx; ix++ {
			v := grid[iy*nx+ix]
			k := 0
			if hi > lo {
				k = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
			}
			fmt.Print(string(ramp[k]))
		}
		fmt.Println()
	}
}
