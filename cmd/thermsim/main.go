// Command thermsim runs the modified HotSpot thermal model on a floorplan
// and power input, under either cooling configuration.
//
// Usage examples:
//
//	# steady state of the built-in EV6 under oil, gcc average power
//	thermsim -floorplan ev6 -workload gcc -package oil-silicon -direction t2b
//
//	# transient on an external floorplan + ptrace
//	thermsim -flp chip.flp -ptrace chip.ptrace -package air-sink -rconv 0.3 -transient
//
//	# closed-loop DTM policy sweep from a declarative scenario spec
//	thermsim scenario -spec sweep.json -workers 4
//
//	# persist a transient's sampled series, then read a range back
//	thermsim -flp chip.flp -ptrace chip.ptrace -transient -store ./tstore -run run1
//	thermsim query -store ./tstore -series run1/IntReg -downsample 1e-3
//
//	# replay the trace against a running thermsvc (or thermsvc -fleet) and
//	# query it back — retries honor the service's Retry-After convention
//	thermsim -ptrace chip.ptrace -transient -remote localhost:8080 -run run1
//	thermsim query -remote localhost:8080 -series run1/IntReg
//
// With -workload the power comes from the built-in synthetic workload
// pipeline (gcc/mcf/art); with -ptrace it is read from a HotSpot-format
// power trace file. The scenario subcommand runs an internal/scenario spec
// (the same JSON the thermsvc /v1/scenario endpoints accept) and prints
// per-cell DTM metrics. The query subcommand reads a telemetry store
// written by -store here or by thermsvc.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
	"repro/internal/tstore"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		if err := runScenarioCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "thermsim:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "query" {
		if err := runQueryCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "thermsim:", err)
			os.Exit(1)
		}
		return
	}
	var (
		flpName   = flag.String("floorplan", "ev6", "built-in floorplan: ev6 | athlon")
		flpFile   = flag.String("flp", "", "external floorplan file (HotSpot .flp format; overrides -floorplan)")
		workload  = flag.String("workload", "", "synthetic workload for power: gcc | mcf | art (EV6 floorplan only)")
		ptrace    = flag.String("ptrace", "", "power trace file (HotSpot .ptrace format)")
		pkg       = flag.String("package", "air-sink", "cooling: air-sink | oil-silicon | water-sink")
		direction = flag.String("direction", "uniform", "oil flow direction: uniform | l2r | r2l | b2t | t2b")
		rconv     = flag.Float64("rconv", 0, "override convection resistance (K/W); 0 = package default")
		secondary = flag.Bool("secondary", false, "model the secondary heat transfer path")
		ambientC  = flag.Float64("ambient", 45, "ambient temperature (°C)")
		transient = flag.Bool("transient", false, "run the full power trace transiently (default: steady state of the average)")
		cycles    = flag.Uint64("cycles", 20_000_000, "simulated cycles for -workload")
		showMap   = flag.Bool("map", false, "print an ASCII thermal map")
		storeDir  = flag.String("store", "", "telemetry store directory: persist the -transient sampled series (see 'thermsim query')")
		runName   = flag.String("run", "run1", "run name prefixing persisted series (-store)")
		remote    = flag.String("remote", "", "replay the -transient against a thermsvc/fleet URL instead of solving locally (retries honor Retry-After; -run persists server-side)")
		interval  = flag.Float64("interval", 3.33e-6, "-remote: seconds per ptrace row sent to the server (HotSpot's 10K-cycle default)")
	)
	flag.Parse()
	if *remote != "" {
		if !*transient {
			fmt.Fprintln(os.Stderr, "thermsim: -remote requires -transient (remote replay streams the trace)")
			os.Exit(1)
		}
		if err := runRemoteTransient(*remote, *flpName, *flpFile, *ptrace, *pkg, *direction, *rconv, *secondary, *ambientC, *interval, *runName); err != nil {
			fmt.Fprintln(os.Stderr, "thermsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*flpName, *flpFile, *workload, *ptrace, *pkg, *direction, *rconv, *secondary, *ambientC, *transient, *cycles, *showMap, *storeDir, *runName); err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
}

// powerSource abstracts where the power rows come from: a fully-resident
// trace (synthetic workloads) or a file streamed twice through the chunked
// decoder — one pass for the average, one for the replay — so memory stays
// O(one row) no matter how long the trace is.
type powerSource struct {
	names    []string
	interval float64
	rows     int
	totalAvg float64
	avg      map[string]float64
	// openRows returns a fresh row stream for replay plus its closer.
	openRows func() (trace.RowReader, func(), error)
}

// memorySource wraps an in-memory trace.
func memorySource(tr *trace.PowerTrace) *powerSource {
	avg := tr.Average()
	pm := make(map[string]float64, len(tr.Names))
	for i, n := range tr.Names {
		pm[n] = avg[i]
	}
	return &powerSource{
		names:    tr.Names,
		interval: tr.Interval,
		rows:     len(tr.Rows),
		totalAvg: tr.TotalAverage(),
		avg:      pm,
		openRows: func() (trace.RowReader, func(), error) {
			return tr.Reader(), func() {}, nil
		},
	}
}

// fileSource streams a trace file: the constructor makes one decoding pass
// to accumulate the per-block average without materializing the rows.
func fileSource(path string, defaultInterval float64) (*powerSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec, err := trace.NewDecoder(f, trace.DecoderOptions{DefaultInterval: defaultInterval})
	if err != nil {
		return nil, err
	}
	names := dec.Names()
	sums := make([]float64, len(names))
	row := make([]float64, len(names))
	rows := 0
	for {
		err := dec.Next(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, v := range row {
			sums[i] += v
		}
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("trace %s has no power rows", path)
	}
	avg := make(map[string]float64, len(names))
	var total float64
	for i, n := range names {
		avg[n] = sums[i] / float64(rows)
		total += avg[n]
	}
	return &powerSource{
		names:    names,
		interval: dec.Interval(),
		rows:     rows,
		totalAvg: total,
		avg:      avg,
		openRows: func() (trace.RowReader, func(), error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			d, err := trace.NewDecoder(f, trace.DecoderOptions{DefaultInterval: defaultInterval})
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return d, func() { f.Close() }, nil
		},
	}, nil
}

func run(flpName, flpFile, workload, ptrace, pkg, direction string, rconv float64, secondary bool, ambientC float64, transient bool, cycles uint64, showMap bool, storeDir, runName string) error {
	if storeDir != "" {
		if !transient {
			return fmt.Errorf("-store persists the transient series; add -transient")
		}
		if err := tstore.ValidRunName(runName); err != nil {
			return err
		}
	}
	// Floorplan.
	var fp *floorplan.Floorplan
	switch {
	case flpFile != "":
		f, err := os.Open(flpFile)
		if err != nil {
			return err
		}
		defer f.Close()
		parsed, err := floorplan.Parse(f)
		if err != nil {
			return err
		}
		fp = parsed
	case flpName == "ev6":
		fp = floorplan.EV6()
	case flpName == "athlon":
		fp = floorplan.Athlon()
	default:
		return fmt.Errorf("unknown floorplan %q", flpName)
	}

	// Power.
	var src *powerSource
	switch {
	case workload != "":
		tr, err := core.RunWorkload(core.WorkloadSpec{Name: workload, Cycles: cycles})
		if err != nil {
			return err
		}
		src = memorySource(tr)
	case ptrace != "":
		var err error
		src, err = fileSource(ptrace, 3.33e-6)
		if err != nil {
			return err
		}
	case flpName == "athlon" && flpFile == "":
		tr, err := trace.Step(fp.Names(), floorplan.AthlonPowers(), 1, 1)
		if err != nil {
			return err
		}
		src = memorySource(tr)
	default:
		return fmt.Errorf("need -workload or -ptrace for power input")
	}

	model, err := core.BuildModel(fp, core.PackageSpec{
		Kind: pkg, Rconv: rconv, Direction: direction,
		Secondary: secondary, AmbientK: ambientC + 273.15,
	})
	if err != nil {
		return err
	}
	fmt.Printf("floorplan: %d blocks, %.1f×%.1f mm die\n", fp.N(), fp.Width()*1e3, fp.Height()*1e3)
	fmt.Printf("package: %s, R_conv = %.3f K/W, ambient %.1f °C\n", pkg, model.RconvEffective(), ambientC)
	fmt.Printf("power: %.1f W average over %d samples\n", src.totalAvg, src.rows)

	vec, err := model.PowerVector(src.avg)
	if err != nil {
		return err
	}
	res := model.SteadyState(vec)

	if transient {
		state := append([]float64(nil), res.Temps...)
		// Replay through the streaming row path: file traces never fully
		// materialize, and an in-memory trace takes the identical code
		// path (bit-identical results either way).
		rows, closeRows, err := src.openRows()
		if err != nil {
			return err
		}
		pts, err := model.ReplayRows(state, rows)
		closeRows()
		if err != nil {
			return err
		}
		res = model.NewResult(state)
		// Report the peak over the run.
		peak := make([]float64, fp.N())
		for _, p := range pts {
			for i, v := range p.BlockC {
				if v > peak[i] {
					peak[i] = v
				}
			}
		}
		duration := float64(src.rows) * src.interval
		if storeDir != "" {
			st, err := tstore.Open(storeDir, tstore.Options{})
			if err != nil {
				return err
			}
			w := tstore.NewWriter(st, runName)
			if err := hotspot.EmitTracePoints(w, "", fp.Names(), pts); err != nil {
				st.Close()
				return err
			}
			if err := st.Close(); err != nil { // Close flushes staged rows to segments
				return err
			}
			fmt.Printf("\npersisted %d rows under %s/ in %s\n", w.Rows(), runName, storeDir)
		}
		fmt.Printf("\ntransient run: %d points over %.4g s\n", len(pts), duration)
		fmt.Println("block                 final °C   peak °C")
		for i, n := range fp.Names() {
			fmt.Printf("%-20s  %8.1f  %8.1f\n", n, res.BlocksC()[i], peak[i])
		}
	} else {
		fmt.Println("\nsteady state:")
		fmt.Println("block                     °C")
		for i, n := range fp.Names() {
			fmt.Printf("%-20s  %8.1f\n", n, res.BlocksC()[i])
		}
	}
	hotName, hot := res.Hottest()
	coolName, cool := res.Coolest()
	fmt.Printf("\nhottest %s %.1f °C | coolest %s %.1f °C | spread %.1f °C | avg %.1f °C\n",
		hotName, hot, coolName, cool, res.Spread(), res.AverageC())

	if showMap {
		printASCIIMap(res.Grid(64, 32), 64, 32)
	}
	return nil
}

// printASCIIMap renders a Celsius grid with a coarse intensity ramp.
func printASCIIMap(grid []float64, nx, ny int) {
	lo, hi := grid[0], grid[0]
	for _, v := range grid {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ramp := " .:-=+*#%@"
	fmt.Printf("\nthermal map (%.1f .. %.1f °C):\n", lo, hi)
	for iy := ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < nx; ix++ {
			v := grid[iy*nx+ix]
			k := 0
			if hi > lo {
				k = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
			}
			fmt.Print(string(ramp[k]))
		}
		fmt.Println()
	}
}
