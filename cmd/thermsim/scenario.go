package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
	"repro/internal/tstore"
)

// runScenarioCmd implements the "thermsim scenario" subcommand: load a
// declarative scenario spec, co-simulate the policy grid in closed loop, and
// print per-cell metrics. It is the CLI face of internal/scenario; the same
// spec posts to thermsvc's /v1/scenario endpoints unchanged.
func runScenarioCmd(args []string) error {
	fs := flag.NewFlagSet("thermsim scenario", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "scenario spec file (JSON; \"-\" reads stdin)")
		workers  = fs.Int("workers", 0, "grid worker pool size (0 = GOMAXPROCS)")
		stream   = fs.Bool("stream", false, "print NDJSON rows as cells finish instead of a table")
		storeDir = fs.String("store", "", "telemetry store directory: persist each cell's sensed series (see 'thermsim query')")
		runName  = fs.String("run", "run1", "run name prefixing persisted series (-store)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: thermsim scenario -spec file.json [-workers N] [-stream] [-store dir -run name]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		fs.Usage()
		return fmt.Errorf("need -spec")
	}
	if *storeDir != "" {
		if err := tstore.ValidRunName(*runName); err != nil {
			return err
		}
	}
	var in io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := scenario.ParseSpec(in)
	if err != nil {
		return err
	}
	compiled, err := scenario.Compile(spec, scenario.Options{})
	if err != nil {
		return err
	}
	cells := compiled.Cells()
	fmt.Fprintf(os.Stderr, "scenario %q: %d cells × %d steps of %.4g s\n",
		compiled.Name(), len(cells), compiled.Steps(), compiled.Interval())

	var onCell func(scenario.CellResult)
	if *stream {
		enc := json.NewEncoder(os.Stdout)
		onCell = func(r scenario.CellResult) {
			row := map[string]any{"cell": r.Cell.Index, "package": r.Cell.Package}
			if r.Err != nil {
				row["error"] = r.Err.Error()
			} else {
				row["metrics"] = r.Metrics
			}
			_ = enc.Encode(row)
		}
	}
	var results []scenario.CellResult
	if *storeDir != "" {
		st, err := tstore.Open(*storeDir, tstore.Options{})
		if err != nil {
			return err
		}
		w := tstore.NewWriter(st, *runName)
		results = compiled.RunGridTelemetry(nil, *workers, onCell, w)
		if err := st.Close(); err != nil { // Close flushes staged rows to segments
			return err
		}
		fmt.Fprintf(os.Stderr, "persisted %d rows under %s/ in %s\n", w.Rows(), *runName, *storeDir)
	} else {
		results = compiled.RunGrid(nil, *workers, onCell)
	}
	if *stream {
		return firstCellError(results)
	}

	fmt.Println("package      trigger  engage(ms)  sample(ms)  perf  actuator    duty  trig  coverage  peak(°C)  penalty")
	for _, r := range results {
		p := r.Cell.Policy
		if r.Err != nil {
			fmt.Printf("%-12s %7.1f  %10.1f  %10.2f  %4.2f  %-10s  error: %v\n",
				r.Cell.Package, p.TriggerC, p.EngageDuration*1e3, p.SampleInterval*1e3, p.PerfFactor, p.Actuator, r.Err)
			continue
		}
		m := r.Metrics
		fmt.Printf("%-12s %7.1f  %10.1f  %10.2f  %4.2f  %-10s  %4.0f%%  %4d  %7.0f%%  %8.1f  %6.1f%%\n",
			r.Cell.Package, p.TriggerC, p.EngageDuration*1e3, p.SampleInterval*1e3, p.PerfFactor, p.Actuator,
			100*m.DutyCycle, m.Engagements, 100*m.ViolationCoverage, m.PeakC, 100*m.PerfPenalty)
	}
	return firstCellError(results)
}

func firstCellError(results []scenario.CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("cell %d (%s): %w", r.Cell.Index, r.Cell.Package, r.Err)
		}
	}
	return nil
}
