package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/trace"
	"repro/internal/tstore"
)

// runQueryCmd implements the "thermsim query" subcommand: open a telemetry
// store directory (the same layout thermsvc -store serves) and either list
// its series or print a time-range query — as a table, or as the NDJSON
// telemetry stream trace.ReadTelemetry decodes (identical to the thermsvc
// /v1/query/stream wire format).
func runQueryCmd(args []string) error {
	fs := flag.NewFlagSet("thermsim query", flag.ContinueOnError)
	var (
		storeDir   = fs.String("store", "", "telemetry store directory")
		series     = fs.String("series", "", "series name (e.g. run1/IntReg)")
		list       = fs.Bool("list", false, "list stored series instead of querying")
		fromS      = fs.String("from", "", "range start in seconds (default: series start)")
		toS        = fs.String("to", "", "range end in seconds, exclusive (default: series end)")
		downsample = fs.Float64("downsample", 0, "bucket granularity in seconds (0 = raw rows)")
		ndjson     = fs.Bool("ndjson", false, "emit the NDJSON telemetry stream instead of a table")
		remote     = fs.String("remote", "", "query a thermsvc/fleet URL instead of a local store directory")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: thermsim query (-store dir | -remote url) (-list | -series name) [-from s] [-to s] [-downsample s] [-ndjson]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote != "" {
		return runRemoteQuery(*remote, *series, *list, *fromS, *toS, *downsample, *ndjson)
	}
	if *storeDir == "" {
		fs.Usage()
		return fmt.Errorf("need -store (or -remote)")
	}
	st, err := tstore.Open(*storeDir, tstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()

	if *list {
		infos := st.Series()
		stats := st.Stats()
		fmt.Printf("store %s: %d series, %d rows, %d segments, %d bytes\n",
			st.Dir(), stats.Series, stats.Rows, stats.Segments, stats.Bytes)
		fmt.Println("series                                   rows  segments     first(s)      last(s)")
		for _, si := range infos {
			fmt.Printf("%-38s %6d  %8d  %11.6f  %11.6f\n",
				si.Name, si.Rows, si.Segments, tstore.Seconds(si.FirstT), tstore.Seconds(si.LastT))
		}
		return nil
	}
	if *series == "" {
		fs.Usage()
		return fmt.Errorf("need -series (or -list)")
	}

	from, to := -int64(1)<<62, int64(1)<<62
	if *fromS != "" {
		sec, err := strconv.ParseFloat(*fromS, 64)
		if err != nil {
			return fmt.Errorf("-from: %v", err)
		}
		from = tstore.Nanos(sec)
	}
	if *toS != "" {
		sec, err := strconv.ParseFloat(*toS, 64)
		if err != nil {
			return fmt.Errorf("-to: %v", err)
		}
		to = tstore.Nanos(sec)
	}
	res, err := st.Query(*series, from, to, tstore.Nanos(*downsample))
	if err != nil {
		return err
	}

	if *ndjson {
		enc := json.NewEncoder(os.Stdout)
		_ = enc.Encode(trace.TelemetryHeader{
			Series: res.Series, FromNs: res.From, ToNs: res.To, DownsampleNs: res.Downsample,
		})
		n := int64(0)
		for _, r := range res.Rows {
			_ = enc.Encode(trace.TelemetryRow{TNs: r.T, V: r.V})
			n++
		}
		for _, b := range res.Buckets {
			_ = enc.Encode(trace.TelemetryBucket{
				StartNs: b.Start, Count: b.Count, Min: b.Min, Max: b.Max, Mean: b.Mean(), Sum: b.Sum,
			})
			n++
		}
		_ = enc.Encode(trace.TelemetryTrailer{Done: true, Rows: n})
		return nil
	}

	if res.Downsample > 0 {
		fmt.Printf("%s: %d buckets of %.6g s (%d rollup-served, %d from raw)\n",
			res.Series, len(res.Buckets), tstore.Seconds(res.Downsample), res.RollupBuckets, res.RawBuckets)
		fmt.Println("    start(s)  count      min °C      max °C     mean °C")
		for _, b := range res.Buckets {
			fmt.Printf("%12.6f  %5d  %10.4f  %10.4f  %10.4f\n",
				tstore.Seconds(b.Start), b.Count, b.Min, b.Max, b.Mean())
		}
		return nil
	}
	fmt.Printf("%s: %d rows\n", res.Series, len(res.Rows))
	fmt.Println("        t(s)          °C")
	for _, r := range res.Rows {
		fmt.Printf("%12.6f  %10.4f\n", tstore.Seconds(r.T), r.V)
	}
	return nil
}
