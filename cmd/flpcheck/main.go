// Command flpcheck validates a floorplan file (HotSpot .flp format) and
// renders it as ASCII art: geometry checks, overlap/gap detection, adjacency
// summary, and the flow-direction spans that the OIL-SILICON model derives
// from it.
//
//	flpcheck ev6            # built-in floorplan
//	flpcheck chip.flp       # external file
package main

import (
	"fmt"
	"os"

	"repro/internal/floorplan"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: flpcheck <ev6|athlon|file.flp>")
		os.Exit(2)
	}
	fp, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "flpcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%d blocks, die %.2f×%.2f mm, block area %.2f mm²\n",
		fp.N(), fp.Width()*1e3, fp.Height()*1e3, fp.TotalArea()*1e6)
	if err := fp.ValidateNoOverlap(); err != nil {
		fmt.Println("OVERLAP:", err)
	} else {
		fmt.Println("no overlaps")
	}
	if err := fp.Validate(); err != nil {
		fmt.Println("tiling:", err)
	} else {
		fmt.Println("blocks tile the die exactly")
	}
	adj := fp.Adjacencies()
	fmt.Printf("%d adjacent block pairs\n", len(adj))
	for _, edge := range []string{"left", "right", "bottom", "top"} {
		idx, err := fp.EdgeBlocks(edge)
		if err != nil {
			continue
		}
		names := make([]string, len(idx))
		for i, bi := range idx {
			names[i] = fp.Blocks[bi].Name
		}
		fmt.Printf("%-6s edge: %v\n", edge, names)
	}
	fmt.Println()
	fmt.Print(fp.String())
}

func load(arg string) (*floorplan.Floorplan, error) {
	switch arg {
	case "ev6":
		return floorplan.EV6(), nil
	case "athlon":
		return floorplan.Athlon(), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return floorplan.Parse(f)
}
