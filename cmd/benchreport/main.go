// Command benchreport converts `go test -bench` output into the schema'd
// benchmark-trajectory JSON checked in as BENCH_solver.json. It reads the
// raw benchmark text from stdin, parses every benchmark line (ns/op, B/op,
// allocs/op and custom b.ReportMetric units), stamps the run environment,
// and — when given a previous report — embeds that run as the baseline and
// computes per-benchmark speedups, so successive reports form a performance
// trajectory across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | \
//	    go run ./cmd/benchreport -commit $(git rev-parse --short HEAD) \
//	        -prev BENCH_solver.json -out BENCH_solver.json
//
// The previous report is read fully before the output file is opened, so
// reading and writing the same path is safe. scripts/bench.sh wraps the
// whole pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the previous run this report compares against.
type Baseline struct {
	Commit  string             `json:"commit"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// HistoryEntry is one run's headline numbers in the report's history array:
// the machine-readable performance trajectory across PRs. Unlike Baseline
// (which always holds exactly the previous run), History accumulates — each
// bench.sh run appends itself.
type HistoryEntry struct {
	Commit string `json:"commit"`
	Date   string `json:"date,omitempty"` // RFC 3339 UTC (absent for runs predating the history schema)
	// GOMAXPROCS distinguishes single-core from multicore runs of the same
	// commit (bench.sh records both). Entries predating the field ran on
	// single-core CI runners and are read as 1.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// NumCPU is the machine's physical-ish core count (runtime.NumCPU) at
	// run time. A GOMAXPROCS=4 run on a 1-CPU container time-slices rather
	// than parallelizes; carrying NumCPU lets readers tag such oversubscribed
	// rows instead of misreading them as parallel-scaling regressions.
	NumCPU  int                `json:"num_cpu,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// procsOf normalizes a history entry's GOMAXPROCS (absent = 1, the
// pre-schema single-core runs).
func procsOf(e HistoryEntry) int {
	if e.GOMAXPROCS > 0 {
		return e.GOMAXPROCS
	}
	return 1
}

// Report is the BENCH_*.json schema.
type Report struct {
	Schema     string      `json:"schema"`
	Commit     string      `json:"commit"`
	Date       string      `json:"date,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline holds the previous report's numbers; Speedup maps benchmark
	// name to baseline_ns / current_ns (>1 = faster now) for benchmarks
	// present in both runs.
	Baseline *Baseline          `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
	// History carries every prior run plus this one (commit, date, ns/op),
	// so the perf trajectory across PRs stays machine-readable instead of
	// being overwritten run after run.
	History []HistoryEntry `json:"history,omitempty"`
}

func main() {
	commit := flag.String("commit", "unknown", "commit hash to stamp the report with")
	prevPath := flag.String("prev", "", "previous report to embed as the baseline (may equal -out)")
	outPath := flag.String("out", "", "output file (default stdout)")
	comparePath := flag.String("compare", "", "compare mode: baseline report to diff -in against (emits warnings, never fails)")
	inPath := flag.String("in", "", "compare mode: freshly generated report")
	threshold := flag.Float64("threshold", 25, "compare mode: warn when ns/op regresses by more than this percentage")
	flag.Parse()

	if *comparePath != "" {
		compareReports(*comparePath, *inPath, *threshold)
		return
	}

	var prev *Report
	if *prevPath != "" {
		raw, err := os.ReadFile(*prevPath)
		if err == nil {
			prev = &Report{}
			if err := json.Unmarshal(raw, prev); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: previous report %s: %v (ignoring)\n", *prevPath, err)
				prev = nil
			}
		}
	}

	rep := &Report{
		Schema:     "repro-bench/1",
		Commit:     *commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if err := parseBench(rep, bufio.NewScanner(os.Stdin)); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	if prev != nil {
		rep.History = prev.History
		if len(rep.History) == 0 {
			// First report with a history: seed it with the previous run so
			// the trajectory starts at the oldest known numbers.
			rep.History = append(rep.History, historyEntry(prev))
		}
		// The baseline (and the speedups derived from it) must come from a
		// run at the same GOMAXPROCS: bench.sh chains a single-core and a
		// multicore run through -prev, and diffing across core counts would
		// report the parallel speedup as a per-PR regression/improvement.
		if commit, ns := baselineNs(prev, rep.GOMAXPROCS); ns != nil {
			rep.Baseline = &Baseline{Commit: commit, NsPerOp: ns}
			rep.Speedup = make(map[string]float64)
			for _, b := range rep.Benchmarks {
				if old, ok := ns[b.Name]; ok && b.NsPerOp > 0 {
					rep.Speedup[b.Name] = round3(old / b.NsPerOp)
				}
			}
		}
	}
	rep.History = append(rep.History, historyEntry(rep))

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

// historyEntry condenses a report into its history line.
func historyEntry(r *Report) HistoryEntry {
	e := HistoryEntry{Commit: r.Commit, Date: r.Date, GOMAXPROCS: r.GOMAXPROCS, NumCPU: r.NumCPU, NsPerOp: make(map[string]float64, len(r.Benchmarks))}
	for _, b := range r.Benchmarks {
		e.NsPerOp[b.Name] = b.NsPerOp
	}
	return e
}

// baselineNs picks the baseline numbers from a previous report for a run at
// the given GOMAXPROCS: the report's own benchmarks when its core count
// matches, otherwise the newest history entry at that core count. Reports
// and history entries predating the per-entry field are read as GOMAXPROCS=1
// (every pre-schema run came from single-core CI runners). Returns a nil map
// when the previous report has no run at this core count.
func baselineNs(prev *Report, procs int) (string, map[string]float64) {
	prevProcs := prev.GOMAXPROCS
	if prevProcs <= 0 {
		prevProcs = 1
	}
	if prevProcs == procs {
		ns := make(map[string]float64, len(prev.Benchmarks))
		for _, b := range prev.Benchmarks {
			ns[b.Name] = b.NsPerOp
		}
		return prev.Commit, ns
	}
	for i := len(prev.History) - 1; i >= 0; i-- {
		if e := prev.History[i]; procsOf(e) == procs {
			return e.Commit, e.NsPerOp
		}
	}
	return "", nil
}

// compareReports diffs two reports and prints a GitHub Actions warning
// annotation per benchmark whose ns/op regressed beyond the threshold. It
// never exits nonzero: CI smoke runs one iteration per benchmark, so the
// numbers carry real noise and the diff is a tripwire, not a gate.
func compareReports(basePath, newPath string, thresholdPct float64) {
	read := func(path string) *Report {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: compare: %v (skipping comparison)\n", err)
			return nil
		}
		r := &Report{}
		if err := json.Unmarshal(raw, r); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: compare: %s: %v (skipping comparison)\n", path, err)
			return nil
		}
		return r
	}
	base, cur := read(basePath), read(newPath)
	if base == nil || cur == nil {
		return
	}
	curProcs := cur.GOMAXPROCS
	if curProcs <= 0 {
		curProcs = 1
	}
	// Baselines match per (benchmark, gomaxprocs): a multicore smoke run
	// diffs against the baseline's multicore numbers, never against its
	// single-core ones.
	baseCommit, baseNs := baselineNs(base, curProcs)
	if baseNs == nil {
		fmt.Printf("benchreport: %s has no run at GOMAXPROCS=%d (skipping comparison)\n", basePath, curProcs)
		return
	}
	// A run with GOMAXPROCS above the machine's core count time-slices
	// goroutines instead of running them in parallel; its ns/op measures
	// scheduler contention as much as the code. Such rows are tagged as
	// informational notices, not regression warnings — a 4-proc row from a
	// 1-core CI container must not read as a parallel-scaling regression.
	oversubscribed := cur.NumCPU > 0 && curProcs > cur.NumCPU
	if oversubscribed {
		fmt.Printf("::notice title=oversubscribed bench run::GOMAXPROCS=%d exceeds NumCPU=%d; ns/op diffs below are time-sliced, not parallel, and are reported as notices\n",
			curProcs, cur.NumCPU)
	}
	regressions := 0
	for _, b := range cur.Benchmarks {
		old, ok := baseNs[b.Name]
		if !ok || old <= 0 || b.NsPerOp <= 0 {
			continue
		}
		pct := (b.NsPerOp/old - 1) * 100
		if pct > thresholdPct {
			regressions++
			level, title := "warning", "bench regression"
			if oversubscribed {
				level, title = "notice", "bench regression (oversubscribed run)"
			}
			fmt.Printf("::%s title=%s::%s: %.0f ns/op vs baseline %.0f (+%.1f%%, threshold %.0f%%, GOMAXPROCS=%d, NumCPU=%d, baseline commit %s)\n",
				level, title, b.Name, b.NsPerOp, old, pct, thresholdPct, curProcs, cur.NumCPU, baseCommit)
		}
	}
	if regressions == 0 {
		fmt.Printf("benchreport: no ns/op regressions beyond %.0f%% against %s (%s, GOMAXPROCS=%d)\n", thresholdPct, basePath, baseCommit, curProcs)
	}
}

// parseBench consumes `go test -bench` text: "pkg:" context lines, "cpu:"
// lines, and benchmark result lines of the form
//
//	BenchmarkName-8   20   2120 ns/op   610 B/op   0 allocs/op   2732 scenarios/s
func parseBench(rep *Report, sc *bufio.Scanner) error {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcSuffix(fields[0]), Pkg: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Pkg != rep.Benchmarks[j].Pkg {
			return rep.Benchmarks[i].Pkg < rep.Benchmarks[j].Pkg
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return nil
}

// trimProcSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar"), keeping names stable
// across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }
